#pragma once
// Read-side file access for the out-of-core persistence layer, plus the
// write-side durability helpers shared by every atomic store writer.
//
// FileView — whole-file random access behind one pointer. On POSIX the
// file is memory-mapped read-only (zero-copy: opening costs no heap and
// no read of the payload; pages fault in on first touch and stay
// reclaimable page cache). Everywhere else — or when mmap fails or is
// disabled with the ULPDREAM_DISABLE_MMAP env kill switch — it degrades
// to the portable fallback: read the whole file into a heap buffer. Every
// accessor is bounds-checked against the real file size and throws a
// std::runtime_error naming the path, so a truncated or lying file can
// never cause a read off the end of the mapping.
//
// ChunkedFileReader — bounded-memory random access for RSS-capped
// consumers (streaming aggregation of stores larger than memory): an
// LRU cache of fixed-size chunks filled by pread/seek+read. Memory is
// capped at chunk_bytes x max_chunks no matter how large the file is;
// sequential walks (even several interleaved ones, e.g. the columns of
// an append-merged store) hit the cache.
//
// Durability helpers — fsync_file / fsync_parent_dir / publish_file_atomic
// implement the full crash-safe publish protocol: flush the staged bytes,
// rename over the target, then fsync the parent directory so the *name*
// survives power loss too (a rename is only as durable as the directory
// entry that records it).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace ulpdream::util {

/// True when the ULPDREAM_DISABLE_MMAP environment variable is set to a
/// non-empty, non-"0" value — the runtime kill switch that forces every
/// FileView onto the portable buffered fallback (used by tests and by
/// deployments where mapping is undesirable).
[[nodiscard]] bool mmap_disabled_by_env();

class FileView {
 public:
  enum class Backing {
    kMapped,    ///< POSIX mmap; zero-copy, pages fault in on demand
    kBuffered,  ///< portable fallback: whole file read into a heap buffer
  };

  FileView() = default;
  /// Opens `path` read-only. Prefers mmap when `allow_mmap` and the
  /// platform supports it (and the env kill switch is off); otherwise
  /// reads the file into a buffer. Throws std::runtime_error naming the
  /// path on any I/O failure.
  [[nodiscard]] static FileView open(const std::string& path,
                                     bool allow_mmap = true);

  FileView(FileView&& other) noexcept;
  FileView& operator=(FileView&& other) noexcept;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;
  ~FileView();

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] Backing backing() const noexcept { return backing_; }
  [[nodiscard]] bool mapped() const noexcept {
    return backing_ == Backing::kMapped;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Bounds-checked byte range; throws std::runtime_error naming the path
  /// when [offset, offset+len) is not fully inside the file.
  [[nodiscard]] std::span<const std::byte> bytes(std::uint64_t offset,
                                                 std::uint64_t len) const;

  /// Bounds-checked little-endian scalar load (memcpy, so alignment of
  /// the stored offset never matters).
  template <typename T>
  [[nodiscard]] T pod_at(std::uint64_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    std::memcpy(&out, bytes(offset, sizeof(T)).data(), sizeof(T));
    return out;
  }

 private:
  std::string path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  Backing backing_ = Backing::kBuffered;
  std::vector<std::byte> buffer_;  ///< owns the bytes in kBuffered mode
  void* map_base_ = nullptr;       ///< mmap base in kMapped mode
  std::size_t map_len_ = 0;
};

class ChunkedFileReader {
 public:
  /// Opens `path` for bounded-memory random access. Total cache memory is
  /// capped at chunk_bytes x max_chunks. Throws std::runtime_error naming
  /// the path when the file cannot be opened. Not thread-safe.
  explicit ChunkedFileReader(std::string path,
                             std::size_t chunk_bytes = 1u << 18,
                             std::size_t max_chunks = 64);

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Copies [offset, offset+len) into `dst` through the chunk cache;
  /// throws std::runtime_error naming the path on a out-of-bounds range
  /// or a short read.
  void read(std::uint64_t offset, void* dst, std::size_t len) const;

  template <typename T>
  [[nodiscard]] T pod_at(std::uint64_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    read(offset, &out, sizeof(T));
    return out;
  }

 private:
  struct Chunk {
    std::uint64_t index = 0;
    std::vector<std::byte> bytes;
  };
  /// Returns the cached chunk covering byte `chunk_index * chunk_bytes_`,
  /// filling (and evicting least-recently-used) as needed.
  [[nodiscard]] const Chunk& chunk(std::uint64_t chunk_index) const;
  void fill(std::uint64_t offset, void* dst, std::size_t len) const;

  std::string path_;
  std::uint64_t size_ = 0;
  std::size_t chunk_bytes_;
  std::size_t max_chunks_;
  struct FdCloser {
    void operator()(void* f) const;
  };
  std::unique_ptr<void, FdCloser> file_;  ///< FILE* behind a void pointer
  // LRU: most-recent at the front; map from chunk index to list node.
  mutable std::list<Chunk> lru_;
  mutable std::unordered_map<std::uint64_t, std::list<Chunk>::iterator> map_;
};

/// fsync(2)s the file at `path` (opened read-only just for the flush).
/// No-op on platforms without fsync. Throws std::runtime_error naming the
/// path on failure.
void fsync_file(const std::string& path);

/// fsyncs the directory containing `path`, making a just-renamed name in
/// it durable. Filesystems that do not support directory fsync (EINVAL /
/// ENOTSUP) are tolerated; real I/O errors throw. No-op off POSIX.
void fsync_parent_dir(const std::string& path);

/// The complete crash-safe publish: fsync `tmp`, rename it over `path`,
/// fsync the parent directory. On failure the staging file is removed and
/// std::runtime_error (naming both paths) is thrown. After it returns, a
/// crash at any point leaves either the old file or the complete new one
/// — never a torn or unnamed checkpoint.
void publish_file_atomic(const std::string& tmp, const std::string& path);

}  // namespace ulpdream::util
