#pragma once
// Deterministic, fast pseudo-random number generation for Monte-Carlo fault
// injection. We avoid std::mt19937 in the hot fault-map path: xoshiro256**
// is ~4x faster and trivially seedable/splittable, which matters when every
// experiment point draws 200 independent fault maps.

#include <array>
#include <cstdint>
#include <limits>

namespace ulpdream::util {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro state
/// (recommended by the xoshiro authors). Also usable standalone as a
/// stateless per-address hash for lazy fault-map evaluation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing hash; maps (seed, index) to a well-distributed 64-bit
/// value. Used to derive independent stream seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t seed,
                                            std::uint64_t index) noexcept {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return sm.next();
}

/// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
/// Satisfies UniformRandomBitGenerator so it can drive std distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Standard normal via polar Box-Muller (cached spare value).
  double gaussian() noexcept;

  /// Gaussian with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Binomial(n, p) sample. Uses inversion for small n*p and a normal
  /// approximation with continuity correction for large n*p; exact enough
  /// for fault-count sampling where n is O(1e5) and p spans 1e-9..1e-1.
  std::uint64_t binomial(std::uint64_t n, double p) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ulpdream::util
