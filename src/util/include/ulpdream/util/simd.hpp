#pragma once
// util::simd — the tiny dispatch layer behind the vectorized block-codec
// kernels (DREAM significance remap, SEC/DED syndrome/correction, the
// FaultyMemory scrambler/fault loops).
//
// Policy, in order:
//  - compile time: defining ULPDREAM_DISABLE_SIMD (the CMake option of the
//    same name) removes every intrinsic kernel from the build; the scalar
//    loops — which are always built and are the bit-exact reference — are
//    all that remains. Non-x86 targets take this path automatically.
//  - runtime: the environment variable ULPDREAM_DISABLE_SIMD (set and not
//    "0") forces the scalar tier without a rebuild, and otherwise the CPU
//    is probed once for AVX2; SSE2 is the x86-64 baseline.
//  - tests: force_tier() clamps the active tier so the SIMD-vs-scalar
//    differential suites can run every compiled path on one machine.
//
// Every kernel guarded by this layer must be bit-identical to its scalar
// fallback — outputs, CodecCounters and AccessStats alike. The dispatch
// is observable (tier_name() lands in micro_codec's --datapath JSON) but
// never allowed to change results.

#include <cstdint>

// Compile-time gate: x86 + a GNU-flavoured compiler (for the per-function
// target("avx2") attribute) and not explicitly disabled.
#if !defined(ULPDREAM_DISABLE_SIMD) && \
    (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define ULPDREAM_SIMD_X86 1
#else
#define ULPDREAM_SIMD_X86 0
#endif

namespace ulpdream::util::simd {

/// Kernel tiers, ordered: a tier implies every lower one.
enum class Tier : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// The tier kernels should dispatch to: the probed CPU tier, clamped by
/// the compile-time gate, the ULPDREAM_DISABLE_SIMD environment variable
/// and any force_tier() override. Cheap after the first call.
[[nodiscard]] Tier active_tier() noexcept;

/// Test hook: clamp active_tier() to `tier` (never raises above what the
/// build/CPU support). Not thread-safe against concurrent kernel calls —
/// for differential tests only.
void force_tier(Tier tier) noexcept;
/// Removes the force_tier() clamp.
void clear_forced_tier() noexcept;

}  // namespace ulpdream::util::simd
