#pragma once
// Optimization barriers for self-timed benchmarks — a dependency-free
// stand-in for benchmark::DoNotOptimize, used where google-benchmark may
// not be available (micro_codec --datapath, CI perf smoke). A timing loop
// whose result is never observed is dead code; routing each pass's output
// through do_not_optimize() forces the compiler to materialize it without
// adding measurable work.

namespace ulpdream::util {

/// Forces `value` to be computed: the empty asm claims to read it (and to
/// clobber memory), so everything feeding it must actually execute.
template <typename T>
inline void do_not_optimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  // Fallback: a volatile store is a visible side effect.
  volatile T sink = value;
  (void)sink;
#endif
}

}  // namespace ulpdream::util
