#pragma once
// String-keyed component registries — the extension seam of the library.
// A Registry<T> maps a stable name to a factory plus a Descriptor, so new
// EMTs, applications and BER models can be added from *outside* src/ (an
// example, a downstream project, a test) and then selected by name through
// every layer that used to switch on an enum: campaign specs, sweep
// configs, CLIs and the Scenario facade. Descriptors carry the metadata a
// driver needs to enumerate and validate components *without*
// instantiating them: a display name, a one-line doc string, capability
// labels (e.g. "corrects-errors", "paper", "extended-tier") and an
// optional integer tag that preserves the legacy enum value for stats
// code that still groups by it.
//
// Registration and lookup are thread-safe (mutex-guarded map); factories
// are invoked outside the lock so a factory may itself consult the
// registry. Duplicate registrations and unknown names throw
// std::invalid_argument, the latter listing every valid name — the error
// a CLI user sees for a typo'd --emts flag.

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ulpdream::util {

/// Shared capability vocabulary for the component registries' built-in
/// descriptors (user registrations may add their own labels freely).
inline constexpr const char* kCapPaper = "paper";  ///< in the paper's set
inline constexpr const char* kCapExtendedTier = "extended-tier";
inline constexpr const char* kCapCorrectsErrors = "corrects-errors";
inline constexpr const char* kCapDetectsErrors = "detects-errors";
inline constexpr const char* kCapSideMemory = "side-memory";

/// Metadata registered alongside a component factory.
struct Descriptor {
  std::string display_name;  ///< human-facing name, e.g. "ECC SEC/DED"
  std::string doc;           ///< one-line description for --list output
  std::vector<std::string> capabilities;  ///< e.g. "paper", "corrects-errors"
  int tag = -1;  ///< optional legacy enum value; -1 = no enum identity

  [[nodiscard]] bool has_capability(std::string_view cap) const {
    return std::find(capabilities.begin(), capabilities.end(), cap) !=
           capabilities.end();
  }
};

template <typename T>
class Registry {
 public:
  using Factory = std::function<std::unique_ptr<T>()>;

  /// `noun` names the component family in error messages ("EMT", "app",
  /// "BER model").
  explicit Registry(std::string noun) : noun_(std::move(noun)) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers `factory` under `name`. Throws std::invalid_argument on an
  /// empty name, a null factory, a name that is already registered, or a
  /// descriptor tag another entry already carries (tags are unique legacy
  /// enum identities; leave the tag at -1 for new components).
  void register_factory(const std::string& name, Factory factory,
                        Descriptor desc = {}) {
    if (name.empty()) {
      throw std::invalid_argument(noun_ + " registration: empty name");
    }
    if (!factory) {
      throw std::invalid_argument(noun_ + " registration: null factory for '" +
                                  name + "'");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(name) != 0) {
      throw std::invalid_argument("duplicate " + noun_ + " registration: '" +
                                  name + "'");
    }
    if (desc.tag >= 0) {
      for (const auto& [other, entry] : entries_) {
        if (entry.desc.tag == desc.tag) {
          throw std::invalid_argument("duplicate " + noun_ + " tag " +
                                      std::to_string(desc.tag) + ": '" + name +
                                      "' vs '" + other + "'");
        }
      }
    }
    entries_.emplace(name, Entry{std::move(factory), std::move(desc)});
    order_.push_back(name);
  }

  /// Instantiates the component registered under `name`. Throws
  /// std::invalid_argument listing the valid names on an unknown name,
  /// or std::runtime_error when the registered factory returns null —
  /// failing at resolution time instead of deep inside a campaign.
  [[nodiscard]] std::unique_ptr<T> create(const std::string& name) const {
    Factory factory;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(name);
      if (it == entries_.end()) throw unknown_error_locked(name);
      factory = it->second.factory;  // invoke outside the lock
    }
    std::unique_ptr<T> made = factory();
    if (made == nullptr) {
      throw std::runtime_error(noun_ + " factory for '" + name +
                               "' returned null");
    }
    return made;
  }

  /// Descriptor for `name`; throws like create() on an unknown name.
  [[nodiscard]] Descriptor descriptor(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) throw unknown_error_locked(name);
    return it->second.desc;
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) != 0;
  }

  /// All registered names, in registration order (built-ins first, in
  /// their canonical presentation order).
  [[nodiscard]] std::vector<std::string> names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return order_;
  }

  /// Names whose descriptor carries `capability`, in registration order.
  [[nodiscard]] std::vector<std::string> names_with(
      std::string_view capability) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (const std::string& name : order_) {
      if (entries_.at(name).desc.has_capability(capability)) {
        out.push_back(name);
      }
    }
    return out;
  }

  /// Name of the entry whose descriptor tag equals `tag`; empty when no
  /// entry carries it. The bridge for the legacy enum shims.
  [[nodiscard]] std::string find_by_tag(int tag) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& name : order_) {
      if (entries_.at(name).desc.tag == tag) return name;
    }
    return {};
  }

  /// Strict form of find_by_tag: throws std::invalid_argument when no
  /// entry carries `tag`.
  [[nodiscard]] std::string name_by_tag(int tag) const {
    std::string name = find_by_tag(tag);
    if (name.empty()) {
      throw std::invalid_argument(noun_ + ": no entry tagged " +
                                  std::to_string(tag));
    }
    return name;
  }

  /// Descriptor tags (entries with tag >= 0 only) in registration order,
  /// optionally filtered by capability — basis of the kind-list shims.
  [[nodiscard]] std::vector<int> tags() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> out;
    for (const std::string& name : order_) {
      const int tag = entries_.at(name).desc.tag;
      if (tag >= 0) out.push_back(tag);
    }
    return out;
  }
  [[nodiscard]] std::vector<int> tags_with(std::string_view capability) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> out;
    for (const std::string& name : order_) {
      const Descriptor& desc = entries_.at(name).desc;
      if (desc.tag >= 0 && desc.has_capability(capability)) {
        out.push_back(desc.tag);
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return order_.size();
  }

  [[nodiscard]] const std::string& noun() const noexcept { return noun_; }

  /// The space-separated valid-name list used in unknown-name errors;
  /// exposed so axis parsers can compose the same message.
  [[nodiscard]] std::string valid_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return valid_names_locked();
  }

 private:
  struct Entry {
    Factory factory;
    Descriptor desc;
  };

  [[nodiscard]] std::string valid_names_locked() const {
    std::string out;
    for (const std::string& name : order_) {
      if (!out.empty()) out += ' ';
      out += name;
    }
    return out;
  }

  [[nodiscard]] std::invalid_argument unknown_error_locked(
      const std::string& name) const {
    return std::invalid_argument("unknown " + noun_ + ": " + name +
                                 " (valid: " + valid_names_locked() + ")");
  }

  mutable std::mutex mutex_;
  std::string noun_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, Entry> entries_;
};

/// Casts a registry tag list back to its enum type, dropping tags above
/// `max_tag` (kind-list shims): user registrations may carry tags outside
/// the legacy enum's range, and those must never appear in an enum-typed
/// list. In-range tags are all claimed by the built-ins — which register
/// before any user code can — and tag uniqueness is enforced, so the
/// filtered result is independent of registration timing.
template <typename Enum>
[[nodiscard]] std::vector<Enum> tags_as(const std::vector<int>& tags,
                                        Enum max_tag) {
  std::vector<Enum> out;
  out.reserve(tags.size());
  for (int tag : tags) {
    if (tag <= static_cast<int>(max_tag)) out.push_back(static_cast<Enum>(tag));
  }
  return out;
}

}  // namespace ulpdream::util
