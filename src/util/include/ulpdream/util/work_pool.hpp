#pragma once
// Shared work-stealing pool — the execution substrate of the async
// runtime. A WorkPool owns a fixed set of long-lived worker threads onto
// which any number of index jobs are submitted concurrently; each job is
// a range [0, count) of independent indices plus a per-worker state
// factory (the parallel_for_index shape, promoted to a first-class
// resumable job). Workers claim one (job, index) pair at a time in
// submission order, so concurrent jobs interleave at item granularity
// and a cancel() takes effect at the next claim. Determinism is the
// caller's contract: a job's result must be keyed on its indices alone
// (the campaign/sweep pattern), never on which worker ran an index or in
// what order — then any interleaving of any number of jobs reproduces
// the isolated runs exactly.
//
// Claim accounting is mutex-based (one lock per claim and one per
// completion): pool items are simulation runs measured in milliseconds,
// so a sub-microsecond critical section is noise, and it buys fair
// cross-job interleaving, item-granular cancellation and exact progress
// counters without atomics gymnastics.

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ulpdream::util {

class WorkPool {
 public:
  /// Per-index work function, private to one (job, worker) pair.
  using WorkerFn = std::function<void(std::size_t)>;
  /// Invoked lazily, once per worker thread that participates in a job,
  /// to build that worker's private state (e.g. an ExperimentRunner).
  /// Must be safe to invoke from several pool threads concurrently.
  using WorkerFactory = std::function<WorkerFn()>;

  class Job;

  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit WorkPool(unsigned threads = 0);
  /// Cancels every outstanding job (in-flight indices finish), then
  /// joins the workers. Job handles outlive the pool safely.
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  /// Enqueues a job of `count` independent indices. Returns immediately;
  /// the handle observes and controls the job.
  [[nodiscard]] std::shared_ptr<Job> submit(std::size_t count,
                                            WorkerFactory factory);

  /// submit(), but workers leave the job untouched until Job::start() is
  /// called — for callers that must publish the handle (e.g. into
  /// callback-visible state) before the first index can possibly run.
  [[nodiscard]] std::shared_ptr<Job> submit_deferred(std::size_t count,
                                                     WorkerFactory factory);

  /// submit() + wait(): the blocking parallel_for_index shape. Throws
  /// std::runtime_error if the job was cancelled before completing (the
  /// pool being destroyed mid-run) — a blocking caller must never
  /// mistake truncated execution for a finished result.
  void run(std::size_t count, WorkerFactory factory);

  [[nodiscard]] unsigned threads() const noexcept;

 private:
  struct State;
  void worker_main(unsigned worker_id);

  std::shared_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// A submitted job: future-like observation and cooperative control.
/// All methods are thread-safe and remain valid after the pool is gone.
class WorkPool::Job {
 public:
  /// Blocks until every claimed index has finished and no more can be
  /// claimed (completion, cancellation, or a worker error). Rethrows the
  /// first exception a worker hit, if any.
  void wait();
  /// Cooperative, item-granular: already-claimed indices run to
  /// completion, unclaimed ones are dropped. Idempotent.
  void cancel();
  /// Releases a submit_deferred() job to the workers. No-op on an
  /// already-started job.
  void start();

  [[nodiscard]] bool finished() const;
  [[nodiscard]] bool cancelled() const;
  [[nodiscard]] std::size_t total() const noexcept { return count_; }
  /// Indices fully executed so far.
  [[nodiscard]] std::size_t done() const;
  /// done(), broken down by pool worker — the throughput view.
  [[nodiscard]] std::vector<std::size_t> done_per_worker() const;

 private:
  friend class WorkPool;
  Job(std::shared_ptr<State> state, std::size_t count, WorkerFactory factory);

  /// Per-(job, worker) slot. `fn` is created and used only by the owning
  /// worker thread; `done` is guarded by the pool mutex.
  struct Slot {
    WorkerFn fn;
    std::size_t done = 0;
  };

  std::shared_ptr<State> state_;
  const std::size_t count_;
  // All remaining fields are guarded by State::mutex.
  WorkerFactory factory_;
  std::vector<Slot> slots_;
  std::size_t next_ = 0;       ///< first unclaimed index
  std::size_t in_flight_ = 0;  ///< claimed, still executing
  std::size_t done_ = 0;
  /// Worker that claimed the previous index — consecutive indices landing
  /// on different workers count as steals (telemetry only).
  unsigned last_worker_ = ~0u;
  bool started_ = false;       ///< submit_deferred gates claims on this
  bool cancelled_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
};

}  // namespace ulpdream::util
