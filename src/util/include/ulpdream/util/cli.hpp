#pragma once
// Tiny flag parser for examples/benches: --key=value / --key value / --flag.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ulpdream::util {

/// Splits a separator-delimited flag value ("a,b,c") into its non-empty
/// elements — the shared parser for list-shaped CLI flags.
[[nodiscard]] std::vector<std::string> split_list(const std::string& list,
                                                  char sep = ',');

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Every --key the user gave, sorted — drivers that enforce a flag
  /// allowlist iterate this to name the offending flag exactly.
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [key, value] : values_) out.push_back(key);
    return out;
  }

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ulpdream::util
