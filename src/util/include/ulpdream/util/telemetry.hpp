#pragma once
// util::telemetry — runtime introspection for the campaign stack, two
// independent halves sharing one design rule: when nothing is looking,
// the instrumented code must run at full speed.
//
//  - Trace recorder: per-thread lock-free ring buffers of span/instant
//    events with nanosecond timestamps, exported as Chrome trace-event
//    JSON (load the file in Perfetto / chrome://tracing). Activation is
//    explicit — trace::start(), the campaign CLI's --trace flag, or the
//    ULPDREAM_TRACE=out.json environment variable (which also writes the
//    file at process exit). While tracing is off, an instrumented scope
//    costs a single relaxed atomic load; there is no locking anywhere on
//    the producer path even while tracing is on (a full ring drops the
//    event and counts the drop rather than block a worker).
//
//  - Metrics registry: named counters, gauges and fixed log-bucket
//    histograms, sharded per thread (an update is one relaxed fetch_add
//    on a thread-private cache line, so workers never contend) and merged
//    on scrape into a MetricsSnapshot — a plain value that serializes to
//    JSON losslessly and byte-stably, and merges associatively with
//    snapshots from other threads, processes or machines. That merge is
//    the contract the future distributed mode consumes: every worker
//    process scrapes locally, the coordinator folds the snapshots.
//    Counters of deterministic work (words encoded, items executed)
//    merge exactly across any shard split; wall-clock histograms merge
//    bucket-wise (counts are exact, the time distribution is whatever
//    the machines measured).
//
// Hot-path *timing* (per-block codec latency histograms) has a second
// gate, hot_timing_enabled(): counters are cheap enough to stay on
// always, but steady_clock reads per 1 kB chunk are not, so the latency
// histograms only tick when a scraper opted in (--metrics-out, the
// datapath bench, tests).
//
// Instrumented scopes nest naturally:
//
//   void Session::checkpoint() {
//     ULPDREAM_TRACE_SPAN("session.checkpoint");   // RAII span
//     static const telemetry::Counter saves("session.checkpoints");
//     saves.add();
//     ...
//   }

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace ulpdream::util::telemetry {

// ---------------------------------------------------------------------------
// Metrics registry.

/// Handle to a named monotone counter. Construction resolves the name to
/// a registry id (one mutex-guarded map lookup — do it once, not per
/// event); add() is one relaxed fetch_add on this thread's shard.
/// Handles are trivially copyable and never invalidated.
class Counter {
 public:
  explicit Counter(const std::string& name);
  void add(std::uint64_t n = 1) const noexcept;

 private:
  std::uint32_t id_;
};

/// Handle to a named last-write-wins gauge (process-global, not sharded:
/// a gauge is a statement of current state, not an accumulation).
class Gauge {
 public:
  explicit Gauge(const std::string& name);
  void set(double value) const noexcept;

 private:
  std::uint32_t id_;
};

/// Handle to a named log2-bucket histogram of non-negative integer values
/// (latencies in ns, sizes in bytes). A recorded value v lands in bucket
/// bit_width(v) (bucket 0 holds exactly v == 0, bucket k holds
/// [2^(k-1), 2^k)), so merging shards is bucket-wise addition and the
/// p50/p95/p99 estimates carry at most a 2x quantization — the right
/// trade for a mergeable, fixed-footprint latency record.
class Histogram {
 public:
  explicit Histogram(const std::string& name);
  void record(std::uint64_t value) const noexcept;

 private:
  std::uint32_t id_;
};

/// One histogram's merged state: total value sum plus the sparse
/// (bucket -> count) map. Quantiles are estimated from the buckets.
struct HistogramSnapshot {
  std::uint64_t sum = 0;
  std::map<int, std::uint64_t> buckets;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Geometric-midpoint estimate of the q-quantile (q in [0, 1]);
  /// 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  void merge(const HistogramSnapshot& other);
  bool operator==(const HistogramSnapshot&) const = default;
};

/// Point-in-time merged view of every registered metric. A plain value:
/// copy it, diff it, merge it, ship it as JSON. Keys are sorted (std::map)
/// and doubles use shortest-round-trip formatting, so write_json() is
/// byte-stable: write -> read -> write reproduces the exact bytes.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Associative fold: counters and histogram buckets add, gauges take
  /// `other`'s value (the later statement of state wins). merge(a, b)
  /// then merge(_, c) equals merge(a, merge(b, c)) — the distributed
  /// coordinator may fold worker snapshots in any grouping.
  void merge(const MetricsSnapshot& other);

  /// This snapshot relative to an earlier `baseline` of the same process:
  /// counters and histograms subtract, gauges keep their current value.
  /// Session::telemetry() uses this to report one session's activity out
  /// of the process-global registry.
  [[nodiscard]] MetricsSnapshot since(const MetricsSnapshot& baseline) const;

  void write_json(std::ostream& os) const;
  /// Inverse of write_json(); throws std::invalid_argument on malformed
  /// input. Round trip is loss-free and byte-stable.
  [[nodiscard]] static MetricsSnapshot read_json(std::istream& is);

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Merges every thread shard (live and retired) into one snapshot. Safe
/// to call concurrently with updates — relaxed reads see each shard's
/// values no staler than the call's start. Also injects the current
/// state gauges (simd.active_tier).
[[nodiscard]] MetricsSnapshot snapshot();

/// Zeroes every counter and histogram cell (test isolation hook). Not
/// synchronized against concurrent updates — call it only while no
/// instrumented code is running.
void reset_metrics();

namespace detail {
extern std::atomic<bool> g_hot_timing;
}  // namespace detail

/// Gate for instrumentation whose *measurement* is too costly for the
/// always-on path (steady_clock reads per codec block). Off by default;
/// --metrics-out, the datapath bench and the telemetry tests switch it on.
[[nodiscard]] inline bool hot_timing_enabled() noexcept {
  return detail::g_hot_timing.load(std::memory_order_relaxed);
}
void set_hot_timing(bool on) noexcept;

// ---------------------------------------------------------------------------
// Trace recorder.

namespace trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The only check on the disabled path: one relaxed atomic load.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Enables event recording (idempotent; events accumulate across
/// start/stop cycles until reset()).
void start() noexcept;
void stop() noexcept;
/// Discards all recorded events and drop counts.
void reset();

/// Events recorded so far, across all threads (diagnostic).
[[nodiscard]] std::size_t event_count();

/// Writes every recorded event as Chrome trace-event JSON — one complete
/// ("ph":"X") event per span, "ph":"i" per instant, plus thread-name
/// metadata. Timestamps are microseconds since the process trace epoch.
/// Loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
void write_chrome_json(std::ostream& os);

}  // namespace trace

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Copies `name` into the process-lifetime string arena and returns a
/// stable pointer — for span names composed at runtime (e.g. per-EMT).
/// Interning is deduplicated; call it once per name, not per event.
[[nodiscard]] const char* intern(const std::string& name);

namespace detail {
/// Slow paths, called only while tracing is enabled.
void emit_span(const char* name, std::uint64_t start_ns) noexcept;
void emit_instant(const char* name) noexcept;
}  // namespace detail

/// RAII span: records a begin timestamp at construction and emits one
/// complete trace event at destruction. `name` must outlive the recorder
/// (string literal or intern()ed). Cost while tracing is off: one relaxed
/// load, no stores.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (trace::enabled()) {
      name_ = name;
      start_ = now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::emit_span(name_, start_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

/// Zero-duration marker event.
inline void trace_instant(const char* name) noexcept {
  if (trace::enabled()) detail::emit_instant(name);
}

}  // namespace ulpdream::util::telemetry

// Scoped span macro: ULPDREAM_TRACE_SPAN("claim_batch"). The short
// TRACE_SPAN spelling is provided unless something else claimed it.
#define ULPDREAM_TELEMETRY_CAT2(a, b) a##b
#define ULPDREAM_TELEMETRY_CAT(a, b) ULPDREAM_TELEMETRY_CAT2(a, b)
#define ULPDREAM_TRACE_SPAN(name)                               \
  const ::ulpdream::util::telemetry::TraceSpan                  \
      ULPDREAM_TELEMETRY_CAT(ulpd_trace_span_, __LINE__) { name }
#ifndef TRACE_SPAN
#define TRACE_SPAN(name) ULPDREAM_TRACE_SPAN(name)
#endif
