#pragma once
// Streaming statistics accumulators used to aggregate Monte-Carlo runs.

#include <cstddef>
#include <vector>

namespace ulpdream::util {

/// Welford online mean/variance accumulator; numerically stable for the
/// long (200+) Monte-Carlo sequences used per experiment point.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantiles over a retained sample vector (fine at our run counts).
class QuantileSketch {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// Linear-interpolated quantile, q in [0, 1]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Simple fixed-width histogram for distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace ulpdream::util
