#pragma once
// Payload codec shared by every ULPDFRM1-framed protocol. The framing
// layer (socket.hpp) moves opaque typed byte blobs; this layer is how
// those blobs are built and picked apart: a little-endian append-only
// writer and a bounds-checked reader whose every failure names the peer,
// the message and the field being decoded. Extracted from the distributed
// runtime's protocol so the query-daemon protocol (serve/protocol.hpp)
// and any future RPC speak byte-compatible payload encodings instead of
// forking the codec.
//
// The reader is deliberately paranoid: a length that runs past the
// buffer, a field missing its bytes, or trailing bytes after the last
// field all throw WireError — a decoder can never read outside the
// payload it was handed, no matter what a peer sent.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ulpdream::util {

/// Typed payload-decode failure naming the peer. Transport-level
/// failures are FrameError (socket.hpp); a WireError means the frame
/// arrived intact but its payload lied about its own shape.
class WireError : public std::runtime_error {
 public:
  WireError(std::string peer, const std::string& what)
      : std::runtime_error(peer + ": " + what), peer_(std::move(peer)) {}
  [[nodiscard]] const std::string& peer() const noexcept { return peer_; }

 private:
  std::string peer_;
};

/// Little-endian payload writer (append-only vector).
class PayloadWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u32(std::uint32_t v) { put_pod(v); }
  void put_u64(std::uint64_t v) { put_pod(v); }
  void put_f64(double v) { put_pod(v); }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void put_blob(const std::vector<std::uint8_t>& b) {
    put_u64(b.size());
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }

 private:
  template <typename T>
  void put_pod(T v) {
    const std::size_t pos = bytes_.size();
    bytes_.resize(pos + sizeof(T));
    std::memcpy(bytes_.data() + pos, &v, sizeof(T));
  }
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked payload reader over a borrowed byte buffer (a frame
/// payload, or a sidecar file's bytes); every failure names the peer,
/// the message and the field being decoded. The buffer must outlive the
/// reader.
class PayloadReader {
 public:
  PayloadReader(const std::vector<std::uint8_t>& bytes, std::string peer,
                const char* msg)
      : bytes_(bytes), peer_(std::move(peer)), msg_(msg) {}

  std::uint8_t get_u8(const char* field) {
    return get_pod<std::uint8_t>(field);
  }
  std::uint32_t get_u32(const char* field) {
    return get_pod<std::uint32_t>(field);
  }
  std::uint64_t get_u64(const char* field) {
    return get_pod<std::uint64_t>(field);
  }
  double get_f64(const char* field) { return get_pod<double>(field); }
  std::string get_string(const char* field) {
    const std::uint32_t len = get_u32(field);
    need(len, field);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_),
                    len);
    pos_ += len;
    return out;
  }
  std::vector<std::uint8_t> get_blob(const char* field) {
    const std::uint64_t len = get_u64(field);
    need(len, field);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<long>(pos_),
                                  bytes_.begin() +
                                      static_cast<long>(pos_ + len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  /// Rejects trailing bytes — a payload longer than the message is as
  /// malformed as a short one (it will desynchronize nothing, but it
  /// means the peer and we disagree about the message shape).
  void finish() const;

 private:
  void need(std::uint64_t len, const char* field) const;
  template <typename T>
  T get_pod(const char* field) {
    need(sizeof(T), field);
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::vector<std::uint8_t>& bytes_;
  mutable std::size_t pos_ = 0;
  std::string peer_;
  const char* msg_;
};

}  // namespace ulpdream::util
