#include "ulpdream/util/table.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ulpdream::util {

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  // A lone empty cell must be quoted: a bare empty line would be
  // indistinguishable from no row at all on the parse side.
  if (cells.size() == 1 && cells[0].empty()) {
    os_ << "\"\"\n";
    return;
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) os_ << ',';
    os_ << escape(cells[c]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

std::vector<std::vector<std::string>> parse_csv(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_started = false;
  char ch = 0;
  while (is.get(ch)) {
    if (in_quotes) {
      if (ch == '"') {
        if (is.peek() == '"') {
          is.get();
          cell.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(ch);
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        row_started = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        row_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_started || !cell.empty()) {
          row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_started = false;
        }
        break;
      default:
        cell.push_back(ch);
        row_started = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("parse_csv: unterminated quote");
  if (row_started || !cell.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string fmt_exact(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) throw std::runtime_error("fmt_exact: to_chars");
  return std::string(buf, ptr);
}

double parse_double_exact(const std::string& text) {
  double value = 0.0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw std::invalid_argument("parse_double_exact: bad number: " + text);
  }
  return value;
}

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) {
    throw std::logic_error("Table: set_header after rows were added");
  }
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(static_cast<std::ostream&>(f));
  return static_cast<bool>(f);
}

void Table::write_csv(std::ostream& os) const {
  CsvWriter csv(os);
  csv.write_row(header_);
  for (const auto& row : rows_) csv.write_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string fmt_eng(double value, const std::string& unit) {
  static const struct {
    double scale;
    const char* prefix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"},  {1e3, "k"},
                 {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
                 {1e-12, "p"}, {1e-15, "f"}};
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.scale || (s.scale == 1e-15 && mag > 0.0)) {
      std::ostringstream os;
      os.precision(3);
      os << value / s.scale << ' ' << s.prefix << unit;
      return os.str();
    }
  }
  return "0 " + unit;
}

}  // namespace ulpdream::util
