#include "ulpdream/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ulpdream::util {

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) {
    throw std::logic_error("Table: set_header after rows were added");
  }
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        f << '"';
        for (char ch : row[c]) {
          if (ch == '"') f << '"';
          f << ch;
        }
        f << '"';
      } else {
        f << row[c];
      }
    }
    f << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return static_cast<bool>(f);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string fmt_eng(double value, const std::string& unit) {
  static const struct {
    double scale;
    const char* prefix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"},  {1e3, "k"},
                 {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
                 {1e-12, "p"}, {1e-15, "f"}};
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.scale || (s.scale == 1e-15 && mag > 0.0)) {
      std::ostringstream os;
      os.precision(3);
      os << value / s.scale << ' ' << s.prefix << unit;
      return os.str();
    }
  }
  return "0 " + unit;
}

}  // namespace ulpdream::util
