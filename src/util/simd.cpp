#include "ulpdream/util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ulpdream::util::simd {

namespace {

Tier detect_tier() {
#if ULPDREAM_SIMD_X86
  if (const char* env = std::getenv("ULPDREAM_DISABLE_SIMD");
      env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
    return Tier::kScalar;
  }
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#if defined(__x86_64__)
  return Tier::kSse2;  // architectural baseline
#else
  return __builtin_cpu_supports("sse2") ? Tier::kSse2 : Tier::kScalar;
#endif
#else
  return Tier::kScalar;
#endif
}

/// -1 while unforced; otherwise the forced tier.
std::atomic<int> g_forced{-1};

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
    case Tier::kScalar: break;
  }
  return "scalar";
}

Tier active_tier() noexcept {
  static const Tier detected = detect_tier();
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced < 0) return detected;
  const auto clamp = static_cast<Tier>(forced);
  return clamp < detected ? clamp : detected;
}

void force_tier(Tier tier) noexcept {
  g_forced.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void clear_forced_tier() noexcept {
  g_forced.store(-1, std::memory_order_relaxed);
}

}  // namespace ulpdream::util::simd
