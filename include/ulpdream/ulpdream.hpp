#pragma once
// Umbrella facade header — the supported include for library users:
//
//   #include <ulpdream/ulpdream.hpp>
//
// Pulls in the public surface of every module and lifts the main entry
// points into the top-level ulpdream namespace. The extension seams are
// the string-keyed registries (ulpdream::core::emt_registry(),
// ulpdream::apps::app_registry(), ulpdream::mem::ber_model_registry()):
// register a component under a name and every layer — campaign specs,
// sweep configs, the campaign CLI and the Scenario builder — can select
// it exactly like a built-in. See examples/custom_emt.cpp for an EMT
// defined and registered entirely outside src/.

// Core: EMT interface, registry-backed factory, adaptive policy, memory.
#include "ulpdream/core/adaptive.hpp"
#include "ulpdream/core/emt.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/protected_buffer.hpp"

// Fault environment: geometry, BER(V) models, fault maps.
#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/mem/fault_map.hpp"
#include "ulpdream/mem/memory.hpp"

// Applications and signal sources.
#include "ulpdream/apps/app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/ecg/generator.hpp"

// Experiment machinery: runner, sweeps, policy search, campaigns, and
// the asynchronous execution runtime (Session / CampaignHandle).
#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/scenario.hpp"
#include "ulpdream/campaign/session.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/sim/policy_explorer.hpp"
#include "ulpdream/sim/runner.hpp"

// Metrics and shared utilities.
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/metrics/quality.hpp"
#include "ulpdream/util/registry.hpp"
#include "ulpdream/util/telemetry.hpp"

namespace ulpdream {

/// The facade entry point: configure by name, run a campaign grid.
using campaign::Scenario;
using campaign::AggregateRow;
using campaign::GroupBy;

/// The asynchronous execution runtime: one shared pool, many campaigns,
/// streaming progress, cancel, checkpoint/resume.
using campaign::CampaignHandle;
using campaign::Progress;
using campaign::Session;
using campaign::SubmitOptions;

/// Registration metadata shared by all component registries.
using util::Descriptor;
using util::Registry;

}  // namespace ulpdream
