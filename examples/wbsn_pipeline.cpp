// Full WBSN node pipeline (the block scheme of the paper's Fig. 1):
//   synthetic ECG acquisition -> morphological filtering (denoise)
//   -> wavelet delineation (P/Q/R/S/T) -> compressed sensing (transmit)
// running on the voltage-scaled data memory with the EMT chosen by the
// adaptive policy of Sec. VI-C. Prints per-stage quality and the energy
// breakdown at the selected operating point.
//
// Usage: wbsn_pipeline [--voltage 0.7] [--seed 5]

#include <iostream>

#include "ulpdream/apps/cs_app.hpp"
#include "ulpdream/apps/delineation_app.hpp"
#include "ulpdream/apps/morph_filter_app.hpp"
#include "ulpdream/core/adaptive.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/metrics/quality.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double voltage = cli.get_double("voltage", 0.70);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  // Acquire: a PVC-laden record to make delineation interesting.
  ecg::GeneratorConfig gen;
  gen.pathology = ecg::Pathology::kPvcBigeminy;
  gen.seed = seed;
  const ecg::Record record = ecg::generate_record(gen);
  std::cout << "Record: " << record.name << ", "
            << record.samples.size() << " samples @ " << record.fs_hz
            << " Hz, " << record.r_locations.size() << " beats\n";

  // The adaptive policy picks the EMT (by registry name) for this supply
  // voltage.
  const core::AdaptivePolicy policy = core::AdaptivePolicy::paper_dwt_policy();
  const std::string emt_name = policy.select(voltage);
  std::cout << "Supply " << voltage << " V -> policy selects EMT: "
            << emt_name << "\n\n";

  // Fault environment for this voltage.
  const auto ber_model = mem::make_ber_model("log-linear");
  util::Xoshiro256 rng(seed);
  const mem::FaultMap faults = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, 22, ber_model->ber(voltage), rng);

  sim::ExperimentRunner runner;
  util::Table table("Pipeline stages under scaled voltage");
  table.set_header({"stage", "snr_dB", "energy_uJ", "corrected_words"});

  // Stage 1: morphological filtering.
  const apps::MorphFilterApp morph;
  const sim::RunResult morph_r =
      runner.run_once(morph, record, emt_name, &faults, voltage);
  table.add_row({"morph_filter", util::fmt(morph_r.snr_db, 1),
                 util::fmt(morph_r.energy.total_j() * 1e6, 4),
                 std::to_string(morph_r.counters.corrected_words)});

  // Stage 2: delineation — also score against the generator ground truth.
  const apps::DelineationApp delineator;
  const sim::RunResult delin_r =
      runner.run_once(delineator, record, emt_name, &faults, voltage);
  const auto emt = core::make_emt(emt_name);
  core::MemorySystem delin_sys(*emt);
  delin_sys.attach_faults(&faults);
  const metrics::FiducialList detected =
      delineator.delineate(delin_sys, record);
  metrics::FiducialList truth_r;
  for (const auto& f : record.truth) {
    if (f.type == metrics::FiducialType::kR && f.position < 2048) {
      truth_r.push_back(f);
    }
  }
  metrics::FiducialList detected_r;
  for (const auto& f : detected) {
    if (f.type == metrics::FiducialType::kR) detected_r.push_back(f);
  }
  const metrics::MatchScore score =
      metrics::match_fiducials(truth_r, detected_r, 12);
  table.add_row({"delineation", util::fmt(delin_r.snr_db, 1),
                 util::fmt(delin_r.energy.total_j() * 1e6, 4),
                 std::to_string(delin_r.counters.corrected_words)});

  // Stage 3: compressed sensing for transmission.
  const apps::CsApp cs_app;
  const sim::RunResult cs_r =
      runner.run_once(cs_app, record, emt_name, &faults, voltage);
  table.add_row({"compressed_sensing", util::fmt(cs_r.snr_db, 1),
                 util::fmt(cs_r.energy.total_j() * 1e6, 4),
                 std::to_string(cs_r.counters.corrected_words)});

  table.print(std::cout);

  std::cout << "\nR-peak detection under faults: sensitivity = "
            << util::fmt(score.sensitivity() * 100.0, 1)
            << "%, PPV = " << util::fmt(score.ppv() * 100.0, 1) << "%\n";

  const double nominal = runner
                             .run_once(morph, record, "none",
                                       nullptr, mem::VoltageWindow::kNominal)
                             .energy.total_j();
  std::cout << "Energy vs nominal unprotected (morph stage): "
            << util::fmt((1.0 - morph_r.energy.total_j() / nominal) * 100.0,
                         1)
            << "% saved\n";
  return 0;
}
