// Interactive trade-off exploration: sweep the data-memory supply for one
// application and print SNR + energy per EMT — the tool a system designer
// would use to pick the operating point (paper Sec. VI-C methodology).
// Runs through the campaign engine: the voltage axis, execution and
// aggregation all come from ulpdream::campaign instead of a hand-rolled
// sweep loop.
//
// Usage:
//   voltage_explorer [--app dwt|matrix_filter|cs|morph_filter|delineation
//                           (or a comma list; each app gets its own policy)]
//                    [--runs 30] [--vmin 0.5] [--vmax 0.9] [--step 0.05]
//                    [--ber-model log-linear|probit] [--tolerance-db 1]
//                    [--csv out.csv]
//                    [--threads N]   (0 = all hardware threads)

#include <fstream>
#include <iostream>
#include <string>

#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/sim/policy_explorer.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  campaign::CampaignSpec spec;
  spec.apps = campaign::parse_app_list(cli.get("app", "dwt"));
  spec.emts = core::paper_emt_names();
  spec.voltages = campaign::CampaignSpec::voltage_range(
      cli.get_double("vmin", 0.5), cli.get_double("vmax", 0.9),
      cli.get_double("step", 0.05));
  spec.records = {campaign::RecordAxis{
      ecg::Pathology::kNormalSinus, 1.0,
      static_cast<std::uint64_t>(cli.get_int("seed", 7))}};
  spec.repetitions = static_cast<std::size_t>(cli.get_int("runs", 30));
  spec.ber_model = cli.get("ber-model", "log-linear");

  const campaign::CampaignEngine engine = campaign::CampaignEngine::from_cli(cli);
  std::cerr << "sweeping " << spec.apps.size() << " app(s) over ["
            << spec.voltages.front() << ", " << spec.voltages.back()
            << "] V, " << spec.repetitions << " runs/point on up to "
            << engine.threads() << " threads...\n";
  const campaign::ResultStore store = engine.run(spec);

  const auto rows = store.aggregate();
  campaign::rows_to_table(rows, "SNR / energy per EMT and voltage")
      .print(std::cout);
  if (const std::string path = cli.get("csv", ""); !path.empty()) {
    std::ofstream f(path);
    campaign::write_rows_csv(f, rows);
    if (!f) {
      std::cerr << "FAILED to write " << path << '\n';
      return 1;
    }
    std::cerr << "wrote " << path << '\n';
  }

  const double tolerance = cli.get_double("tolerance-db", 1.0);
  for (std::size_t ai = 0; ai < spec.apps.size(); ++ai) {
    const sim::SweepResult res = store.to_sweep_result(0, ai);
    std::cout << "\n" << spec.apps[ai]
              << " (max SNR error-free: " << util::fmt(res.max_snr_db, 1)
              << " dB), with a -" << tolerance << " dB tolerance:\n";
    const sim::PolicyResult policy = sim::explore_policy(res, tolerance);
    for (const auto& p : policy.points) {
      if (!p.feasible) {
        std::cout << "  " << p.emt << ": infeasible\n";
        continue;
      }
      std::cout << "  " << p.emt << ": safe down to "
                << util::fmt(p.min_safe_voltage, 2) << " V, saving "
                << util::fmt(p.savings_vs_nominal_frac * 100.0, 1)
                << "% vs nominal unprotected\n";
    }
  }
  return 0;
}
