// Interactive trade-off exploration: sweep the data-memory supply for one
// application and print SNR + energy per EMT — the tool a system designer
// would use to pick the operating point (paper Sec. VI-C methodology).
//
// Usage:
//   voltage_explorer [--app dwt|matrix_filter|cs|morph_filter|delineation]
//                    [--runs 30] [--vmin 0.5] [--vmax 0.9] [--step 0.05]
//                    [--ber-model log-linear|probit] [--tolerance-db 1]
//                    [--threads N]   (0 = all hardware threads)

#include <iostream>
#include <string>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/parallel_sweep.hpp"
#include "ulpdream/sim/policy_explorer.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

namespace {

apps::AppKind parse_app(const std::string& name) {
  for (const apps::AppKind kind : apps::all_app_kinds()) {
    if (name == apps::app_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown app: " + name +
                              " (try dwt, matrix_filter, cs, morph_filter,"
                              " delineation)");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto app = apps::make_app(parse_app(cli.get("app", "dwt")));

  sim::SweepConfig cfg;
  const double vmin = cli.get_double("vmin", 0.5);
  const double vmax = cli.get_double("vmax", 0.9);
  const double step = cli.get_double("step", 0.05);
  for (double v = vmin; v <= vmax + 1e-9; v += step) cfg.voltages.push_back(v);
  cfg.runs = static_cast<std::size_t>(cli.get_int("runs", 30));
  cfg.emts = core::all_emt_kinds();
  if (cli.get("ber-model", "log-linear") == "probit") {
    cfg.ber_model = mem::BerModelKind::kProbit;
  }

  const ecg::Record record = ecg::make_default_record(
      static_cast<std::uint64_t>(cli.get_int("seed", 7)));

  const sim::ParallelSweepRunner runner =
      sim::ParallelSweepRunner::from_cli(cli);
  std::cerr << "sweeping " << app->name() << " over [" << vmin << ", "
            << vmax << "] V, " << cfg.runs << " runs/point on up to "
            << runner.threads() << " threads...\n";
  const sim::SweepResult res = runner.run(*app, record, cfg);

  std::cout << "App: " << app->name()
            << "  (max SNR error-free: " << util::fmt(res.max_snr_db, 1)
            << " dB)\n\n";

  util::Table table("SNR [dB] / energy [uJ] per EMT and voltage");
  table.set_header({"V", "none_snr", "none_uJ", "dream_snr", "dream_uJ",
                    "ecc_snr", "ecc_uJ"});
  for (auto it = cfg.voltages.rbegin(); it != cfg.voltages.rend(); ++it) {
    const auto* n = res.find(core::EmtKind::kNone, *it);
    const auto* d = res.find(core::EmtKind::kDream, *it);
    const auto* e = res.find(core::EmtKind::kEccSecDed, *it);
    table.add_row({util::fmt(*it, 2), util::fmt(n->snr_mean_db, 1),
                   util::fmt(n->energy_mean_j * 1e6, 4),
                   util::fmt(d->snr_mean_db, 1),
                   util::fmt(d->energy_mean_j * 1e6, 4),
                   util::fmt(e->snr_mean_db, 1),
                   util::fmt(e->energy_mean_j * 1e6, 4)});
  }
  table.print(std::cout);

  const double tolerance = cli.get_double("tolerance-db", 1.0);
  const sim::PolicyResult policy = sim::explore_policy(res, tolerance);
  std::cout << "\nWith a -" << tolerance << " dB tolerance:\n";
  for (const auto& p : policy.points) {
    if (!p.feasible) {
      std::cout << "  " << core::emt_kind_name(p.emt) << ": infeasible\n";
      continue;
    }
    std::cout << "  " << core::emt_kind_name(p.emt) << ": safe down to "
              << util::fmt(p.min_safe_voltage, 2) << " V, saving "
              << util::fmt(p.savings_vs_nominal_frac * 100.0, 1)
              << "% vs nominal unprotected\n";
  }
  return 0;
}
