#!/usr/bin/env python3
"""Dependency-free Python client for the campaign query daemon.

Speaks the raw wire protocol (ULPDFRM1 framing + the little-endian
payload layout of src/serve/protocol.cpp) with nothing but the standard
library, as a worked example of driving the daemon from outside the C++
tree. Sends one Query describing a grid, waits through the streamed
Progress frames, and writes the daemon's aggregate rows as CSV to
stdout — byte-identical to what `campaign query --csv` saves for the
same grid, which is exactly what CI asserts.

    python3 query_client.py --connect 127.0.0.1:7901 \
        --apps dwt --emts dream --vmin 0.6 --vmax 0.7 --step 0.05 \
        --reps 2 > rows.csv

Exit codes mirror the campaign CLI: 0 success, 1 runtime/daemon error,
2 usage error.
"""

import argparse
import math
import socket
import struct
import sys

MAGIC = b"ULPDFRM1"
HEADER = struct.Struct("<8sIIQ")  # magic, type, reserved, payload length

MSG_QUERY = 32
MSG_RESULT = 33
MSG_PROGRESS = 34
MSG_ERROR = 35

PROTOCOL_VERSION = 1
CACHE_STATUS = {0: "cold", 1: "hit", 2: "gap-fill"}

# Record-generation front-end defaults; must match campaign::CampaignSpec.
FS_HZ = 250.0
DURATION_S = 8.2


class Payload:
    """Append-only little-endian payload writer (util::PayloadWriter)."""

    def __init__(self):
        self.buf = bytearray()

    def u8(self, v):
        self.buf += struct.pack("<B", v)

    def u32(self, v):
        self.buf += struct.pack("<I", v)

    def u64(self, v):
        self.buf += struct.pack("<Q", v)

    def f64(self, v):
        self.buf += struct.pack("<d", v)

    def string(self, s):
        raw = s.encode()
        self.u32(len(raw))
        self.buf += raw


class Reader:
    """Bounds-checked payload reader (util::PayloadReader)."""

    def __init__(self, buf):
        self.buf = buf
        self.pos = 0

    def _take(self, n):
        if self.pos + n > len(self.buf):
            raise RuntimeError("malformed frame: truncated payload")
        out = self.buf[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return struct.unpack("<B", self._take(1))[0]

    def u64(self):
        return struct.unpack("<Q", self._take(8))[0]

    def blob(self):
        return self._take(self.u64())

    def string(self):
        n = struct.unpack("<I", self._take(4))[0]
        return self._take(n).decode()


def snap(v):
    """The voltage-grid snap of CampaignSpec::voltage_range: round to
    1e-6 V, half away from zero (C++ std::round, not Python's
    round-half-even)."""
    return math.floor(v * 1e6 + 0.5) / 1e6 if v >= 0 else -snap(-v)


def voltage_range(vmin, vmax, step):
    if step <= 0 or vmax < vmin:
        raise ValueError("need step > 0, vmax >= vmin")
    count = int((vmax - vmin) / step + 1e-9) + 1
    return [snap(vmin + i * step) for i in range(count)]


def group_mask(axes):
    bits = {"record": 1, "app": 2, "emt": 4, "voltage": 8}
    mask = 0
    for axis in axes.split(","):
        if axis not in bits:
            raise ValueError(
                "--group axes: record, app, emt, voltage (got %s)" % axis
            )
        mask |= bits[axis]
    return mask


def encode_query(args):
    p = Payload()
    p.u32(PROTOCOL_VERSION)
    # The spec block (serve::encode_spec field order).
    apps = args.apps.split(",")
    p.u32(len(apps))
    for a in apps:
        p.string(a)
    emts = args.emts.split(",")
    p.u32(len(emts))
    for e in emts:
        p.string(e)
    voltages = voltage_range(args.vmin, args.vmax, args.step)
    p.u32(len(voltages))
    for v in voltages:
        p.f64(v)
    records = [
        (pathology, float(noise))
        for noise in args.noise.split(",")
        for pathology in args.pathologies.split(",")
    ]
    p.u32(len(records))
    for pathology, noise in records:
        p.string(pathology)
        p.f64(noise)
        p.u64(args.record_seed)
    p.u64(args.reps)
    p.u64(args.seed)
    p.string(args.ber_model)
    p.f64(FS_HZ)
    p.f64(DURATION_S)
    # The wants.
    p.u8(1 if args.store_out else 0)
    p.u8(1)  # want_rows: the CSV on stdout is the point
    p.u8(group_mask(args.group))
    return bytes(p.buf)


def read_exact(sock, n):
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise RuntimeError("daemon closed the connection mid-frame")
        buf += chunk
    return bytes(buf)


def read_frame(sock):
    magic, ftype, _, length = HEADER.unpack(read_exact(sock, HEADER.size))
    if magic != MAGIC:
        raise RuntimeError("bad frame magic %r (not a ulpdream daemon?)" % magic)
    return ftype, read_frame_payload(sock, length)


def read_frame_payload(sock, length):
    return read_exact(sock, length) if length else b""


def connect(endpoint):
    if endpoint.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(endpoint[len("unix:") :])
        return sock
    host, _, port = endpoint.rpartition(":")
    if not host:
        raise ValueError("--connect expects HOST:PORT or unix:/path")
    return socket.create_connection((host, int(port)))


def main():
    ap = argparse.ArgumentParser(
        description="query a ulpdream campaign daemon, CSV rows to stdout"
    )
    ap.add_argument("--connect", required=True, help="HOST:PORT or unix:/path")
    ap.add_argument("--apps", default="paper")
    ap.add_argument("--emts", default="paper")
    ap.add_argument("--vmin", type=float, default=0.5)
    ap.add_argument("--vmax", type=float, default=0.9)
    ap.add_argument("--step", type=float, default=0.05)
    ap.add_argument("--pathologies", default="normal_sinus")
    ap.add_argument("--noise", default="1")
    ap.add_argument("--record-seed", type=int, default=7)
    ap.add_argument("--reps", type=int, default=30)
    ap.add_argument("--seed", type=int, default=2016)
    ap.add_argument("--ber-model", default="log-linear")
    ap.add_argument("--group", default="record,app,emt,voltage")
    ap.add_argument("--store-out", help="save the columnar store bytes here")
    args = ap.parse_args()

    try:
        payload = encode_query(args)
    except ValueError as e:
        print("query_client: %s" % e, file=sys.stderr)
        return 2

    sock = connect(args.connect)
    sock.sendall(HEADER.pack(MAGIC, MSG_QUERY, 0, len(payload)) + payload)

    while True:
        ftype, body = read_frame(sock)
        r = Reader(body)
        if ftype == MSG_PROGRESS:
            done, total = r.u64(), r.u64()
            print("\r[query_client] %d/%d items" % (done, total),
                  end="", file=sys.stderr, flush=True)
        elif ftype == MSG_ERROR:
            print("query_client: daemon error: %s" % r.string(),
                  file=sys.stderr)
            return 1
        elif ftype == MSG_RESULT:
            status = CACHE_STATUS.get(r.u8(), "unknown")
            total, executed = r.u64(), r.u64()
            store = r.blob()
            rows_csv = r.string()
            print("\r[query_client] %s answer: %d of %d items executed"
                  % (status, executed, total), file=sys.stderr)
            if args.store_out:
                with open(args.store_out, "wb") as f:
                    f.write(store)
            sys.stdout.write(rows_csv)
            return 0
        else:
            print("query_client: unexpected frame type %d" % ftype,
                  file=sys.stderr)
            return 1


if __name__ == "__main__":
    sys.exit(main())
