// Declarative experiment campaigns from the command line: describe a grid
// (apps x EMTs x voltages x records x repetitions), execute it — whole or
// one shard of a split — and export grouped aggregates as a table, CSV
// and/or JSON. Results are bit-identical for any --threads value and any
// --shard split (see tests/campaign_test.cpp).
//
// Usage:
//   campaign [--apps dwt,cs|paper|all] [--emts none,dream,ecc_secded|paper|all]
//            [--vmin 0.5] [--vmax 0.9] [--step 0.05]
//            [--pathologies normal_sinus,afib|all] [--noise 1]
//            [--record-seed 7] [--reps 30] [--seed 2016]
//            [--ber-model log-linear|probit] [--threads N] [--list]
//            [--group record,app,emt,voltage]
//            [--csv out.csv] [--json out.json]
//   # sharded execution across processes:
//   campaign <axes...> --shard 0/3 --store-out shard0.store
//   campaign <axes...> --shard 1/3 --store-out shard1.store
//   campaign <axes...> --shard 2/3 --store-out shard2.store
//   campaign <axes...> --merge-stores shard0.store,shard1.store,shard2.store
//            --csv merged.csv

#include <fstream>
#include <iostream>
#include <string>

#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

namespace {

campaign::CampaignSpec spec_from_cli(const util::Cli& cli) {
  campaign::CampaignSpec spec;
  spec.apps = campaign::parse_app_list(cli.get("apps", "paper"));
  spec.emts = campaign::parse_emt_list(cli.get("emts", "paper"));
  spec.voltages = campaign::CampaignSpec::voltage_range(
      cli.get_double("vmin", 0.5), cli.get_double("vmax", 0.9),
      cli.get_double("step", 0.05));
  const auto pathologies = campaign::parse_pathology_list(
      cli.get("pathologies", "normal_sinus"));
  const auto record_seed =
      static_cast<std::uint64_t>(cli.get_int("record-seed", 7));
  for (const std::string& scale : util::split_list(cli.get("noise", "1"))) {
    for (ecg::Pathology p : pathologies) {
      spec.records.push_back(campaign::RecordAxis{
          p, util::parse_double_exact(scale), record_seed});
    }
  }
  spec.repetitions = static_cast<std::size_t>(cli.get_int("reps", 30));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2016));
  spec.ber_model = cli.get("ber-model", "log-linear");
  // Eager validation; the registry's unknown-name error lists valid names.
  (void)mem::ber_model_registry().descriptor(spec.ber_model);
  return spec.normalized();
}

/// `--list`: enumerate the component registries from their descriptors —
/// what can go into --apps/--emts/--ber-model, without instantiating
/// anything.
void print_registries() {
  util::Table table("Registered components");
  table.set_header({"kind", "name", "capabilities", "description"});
  const auto caps_of = [](const util::Descriptor& d) {
    std::string caps;
    for (const std::string& c : d.capabilities) {
      if (!caps.empty()) caps += ',';
      caps += c;
    }
    return caps.empty() ? std::string("-") : caps;
  };
  for (const std::string& name : apps::app_names()) {
    const auto d = apps::app_registry().descriptor(name);
    table.add_row({"app", name, caps_of(d), d.doc});
  }
  for (const std::string& name : core::emt_names()) {
    const auto d = core::emt_registry().descriptor(name);
    table.add_row({"emt", name, caps_of(d), d.doc});
  }
  for (const std::string& name : mem::ber_model_names()) {
    const auto d = mem::ber_model_registry().descriptor(name);
    table.add_row({"ber-model", name, caps_of(d), d.doc});
  }
  table.print(std::cout);
}

campaign::Shard shard_from_cli(const util::Cli& cli) {
  const std::string arg = cli.get("shard", "0/1");
  const auto slash = arg.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("--shard expects I/N, e.g. --shard 0/4");
  }
  campaign::Shard shard;
  shard.index = std::stoull(arg.substr(0, slash));
  shard.count = std::stoull(arg.substr(slash + 1));
  return shard;
}

campaign::GroupBy group_from_cli(const util::Cli& cli) {
  const std::string arg = cli.get("group", "record,app,emt,voltage");
  campaign::GroupBy group{false, false, false, false};
  for (const std::string& axis : util::split_list(arg)) {
    if (axis == "record") {
      group.record = true;
    } else if (axis == "app") {
      group.app = true;
    } else if (axis == "emt") {
      group.emt = true;
    } else if (axis == "voltage") {
      group.voltage = true;
    } else {
      throw std::invalid_argument(
          "--group axes: record, app, emt, voltage (got " + axis + ")");
    }
  }
  return group;
}

void export_aggregates(const util::Cli& cli, const campaign::ResultStore& store) {
  const auto rows = store.aggregate(group_from_cli(cli));
  campaign::rows_to_table(
      rows, "Campaign aggregates (" + std::to_string(rows.size()) + " groups)")
      .print(std::cout);

  if (const std::string path = cli.get("csv", ""); !path.empty()) {
    std::ofstream f(path);
    campaign::write_rows_csv(f, rows);
    if (!f) throw std::runtime_error("failed to write " + path);
    std::cerr << "[campaign] wrote " << path << '\n';
  }
  if (const std::string path = cli.get("json", ""); !path.empty()) {
    std::ofstream f(path);
    campaign::write_rows_json(f, rows);
    if (!f) throw std::runtime_error("failed to write " + path);
    std::cerr << "[campaign] wrote " << path << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    if (cli.has("list")) {
      print_registries();
      return 0;
    }
    const campaign::CampaignSpec spec = spec_from_cli(cli);

    // Merge mode: reassemble shard stores instead of executing.
    if (const std::string list = cli.get("merge-stores", ""); !list.empty()) {
      campaign::ResultStore merged(spec);
      for (const std::string& path : util::split_list(list)) {
        std::ifstream f(path);
        if (!f) throw std::runtime_error("cannot open " + path);
        merged.merge(campaign::ResultStore::load(f, spec));
      }
      export_aggregates(cli, merged);
      return 0;
    }

    const campaign::Shard shard = shard_from_cli(cli);
    const campaign::CampaignEngine engine = campaign::CampaignEngine::from_cli(cli);
    std::cerr << "[campaign] " << spec.records.size() << " records x "
              << spec.apps.size() << " apps x " << spec.emts.size()
              << " emts x " << spec.voltages.size() << " voltages x "
              << spec.repetitions << " reps = " << spec.item_count()
              << " items (" << spec.cell_count() << " cells), shard "
              << shard.index << "/" << shard.count << " on up to "
              << engine.threads() << " threads\n";

    const campaign::ResultStore store = engine.run(spec, shard);

    if (const std::string path = cli.get("store-out", ""); !path.empty()) {
      std::ofstream f(path);
      store.save(f);
      if (!f) throw std::runtime_error("failed to write " + path);
      std::cerr << "[campaign] wrote raw store " << path << " ("
                << store.items_done() << " items)\n";
    }
    if (store.complete()) {
      export_aggregates(cli, store);
    } else {
      std::cerr << "[campaign] shard store incomplete by design; merge all "
                   "shards with --merge-stores to aggregate\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "campaign: " << e.what() << '\n';
    return 1;
  }
}
