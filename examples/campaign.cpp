// Declarative experiment campaigns from the command line: describe a grid
// (apps x EMTs x voltages x records x repetitions), execute it on the
// async session runtime — whole, one shard of a split, or resuming an
// interrupted run from a checkpoint — and export grouped aggregates as a
// table, CSV and/or JSON. Results are bit-identical for any --threads
// value, any --shard split and any checkpoint/resume split (see
// tests/campaign_test.cpp and tests/session_test.cpp). Run with --help
// for the full flag reference.
//
//   # whole grid, live progress:
//   campaign --apps dwt,cs --reps 30 --threads 0 --progress --csv out.csv
//
//   # long grid with crash insurance: checkpoint the raw store every 10
//   # items, and complete the missing items after an interruption:
//   campaign <axes...> --checkpoint-every 10 --store-out run.store
//   campaign <axes...> --resume run.store --store-out run.store --csv out.csv
//
//   # sharded execution across processes, then merge:
//   campaign <axes...> --shard 0/3 --store-out shard0.store
//   campaign <axes...> --shard 1/3 --store-out shard1.store
//   campaign <axes...> --shard 2/3 --store-out shard2.store
//   campaign <axes...> --merge-stores shard0.store,shard1.store,shard2.store
//            --csv merged.csv

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "ulpdream/campaign/session.hpp"
#include "ulpdream/campaign/store_reader.hpp"
#include "ulpdream/dist/coordinator.hpp"
#include "ulpdream/dist/worker.hpp"
#include "ulpdream/serve/client.hpp"
#include "ulpdream/serve/daemon.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/log.hpp"
#include "ulpdream/util/table.hpp"
#include "ulpdream/util/telemetry.hpp"

using namespace ulpdream;

namespace {

/// A problem with how the command line was written (unknown flag or
/// verb, missing required flag, unparseable value) — exits 2, distinct
/// from runtime failures (exit 1), so scripts can tell "fix your
/// invocation" from "the run failed".
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runs `f`, reclassifying std::invalid_argument as UsageError: the
/// parse helpers below and the axis/registry parsers all signal bad
/// flag *values* with invalid_argument, and a bad value is a usage
/// problem, not a runtime one.
template <typename F>
decltype(auto) parse_flags(F&& f) {
  try {
    return f();
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
}

/// Every flag the grid axes understand (shared by run/serve/work).
const std::vector<std::string>& axis_flags() {
  static const std::vector<std::string> flags = {
      "apps", "emts",        "vmin", "vmax", "step",      "pathologies",
      "noise", "record-seed", "reps", "seed", "ber-model"};
  return flags;
}

/// Rejects any given flag outside `allowed` (+ the axis flags), naming
/// the offending flag. Every verb calls this first, so a typo fails
/// fast with exit 2 instead of being silently ignored.
void enforce_flags(const util::Cli& cli,
                   const std::vector<std::string>& allowed,
                   const std::string& verb) {
  for (const std::string& key : cli.keys()) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    const auto& axes = axis_flags();
    if (std::find(axes.begin(), axes.end(), key) != axes.end()) continue;
    throw UsageError("unknown flag --" + key + " for 'campaign" +
                     (verb.empty() ? "" : " " + verb) + "' (see --help)");
  }
}

void print_help() {
  std::cout <<
      R"(campaign — declarative experiment grids on the async session runtime

Usage:
  campaign [--flags]          execute a grid in this process
  campaign serve [--flags]    coordinate a distributed campaign (lease
                              item ranges to socket-connected workers,
                              ingest their columnar shards, publish the
                              merged store)
  campaign work [--flags]     execute leases for a coordinator
  campaign daemon [--flags]   answer spec queries from a warm session
                              plus a persistent result cache
  campaign query [--flags]    ask a daemon for a grid (cached answers
                              return without recomputing anything)

Exit codes: 0 success; 1 runtime failure; 2 usage error (unknown flag or
verb, missing required flag, bad flag value — the message names it).

Grid axes:
  --apps LIST          comma list of app names, or paper|all   [paper]
  --emts LIST          comma list of EMT names, or paper|all   [paper]
  --vmin V --vmax V --step V   inclusive voltage grid          [0.5..0.9/0.05]
  --pathologies LIST   comma list of pathologies, or all       [normal_sinus]
  --noise LIST         comma list of noise scales              [1]
  --record-seed N      generator seed for every record axis    [7]
  --reps N             Monte-Carlo fault maps per cell         [30]
  --seed N             campaign RNG seed                       [2016]
  --ber-model NAME     BER(V) model                            [log-linear]

Execution (campaign::Session):
  --threads N          pool workers; 0 = all hardware threads  [0]
  --shard I/N          execute only this slice of the grid     [0/1]
  --progress           live progress line (items/s, ETA) on stderr
  --max-items N        cancel (item-granular) after ~N executed items
  --checkpoint-every N write the raw store to --store-out after every N
                       items (atomic tmp+rename), resumable with --resume
  --resume PATH        adopt a previous run's raw store and execute only
                       the missing items (grid fingerprint must match;
                       text or columnar, auto-detected by magic)

Observability (util::telemetry; see README "Observability"):
  --trace PATH         record spans on all workers and write Chrome
                       trace-event JSON at exit (open in Perfetto);
                       the ULPDREAM_TRACE=PATH env does the same
  --metrics-out PATH   write the session's MetricsSnapshot JSON at exit
                       (also enables the gated hot-path latency histograms)
  --metrics-every N    log a one-line metrics summary to stderr every N
                       seconds while running
  --merge-metrics LIST merge saved metrics JSONs (counters add, histograms
                       add bucket-wise) into --metrics-out, no execution

Output:
  --store-out PATH     save the raw store (resume/merge input)
  --store-format F     raw-store format: text | columnar         [text]
                       (text: human-greppable line format, parsed on
                       load; columnar: binary out-of-core format,
                       zero-copy mmap load + streaming aggregation —
                       pick it for >=10^5-item grids)
  --group LIST         aggregation axes: record,app,emt,voltage [all four]
  --csv PATH           aggregates as CSV (exact doubles)
  --json PATH          aggregates as JSON
  --merge-stores LIST  merge saved raw stores instead of executing
                       (formats auto-detected and mixable; when every
                       input is columnar and --store-format columnar
                       --store-out PATH are given, shards fold by
                       append + streaming aggregation — memory stays
                       bounded no matter how large the stores are)
  --list               enumerate registered components and exit
  --help               this text

Distributed (campaign serve; see README "Distributed campaigns"):
  --listen EP          endpoint to serve on: HOST:PORT (port 0 picks an
                       ephemeral port, printed on stderr) or unix:/path
  --lease-items N      items per lease grant                    [256]
  --lease-ttl MS       re-lease a lease not renewed within MS   [10000]
  --heartbeat-ms MS    renewal cadence advertised to workers    [2000]
  --spool-dir DIR      where ingested shard files land (required)
  --store-out PATH     the merged columnar store (required); byte-
                       identical to a single-process run of the grid
  --metrics-out PATH   write the folded worker metrics JSON

Distributed (campaign work):
  --connect EP         coordinator endpoint (required)
  --name NAME          worker label for logs and telemetry      [worker]
  --threads N          session pool workers; 0 = all hardware   [0]
  --checkpoint-dir DIR local columnar checkpoints of the in-progress
                       lease (crash forensics; the coordinator re-leases
                       regardless)
  --checkpoint-every N checkpoint cadence in items (with --checkpoint-dir)

Query daemon (campaign daemon; see README "Query daemon"):
  --listen EP          endpoint to serve on: HOST:PORT (port 0 picks an
                       ephemeral port, printed on stderr) or unix:/path
  --cache-dir DIR      persistent result cache directory (required);
                       a restarted daemon rehydrates its warm set here
  --cache-budget-mb N  LRU byte budget for cached stores        [256]
  --threads N          session pool workers; 0 = all hardware   [0]
  --progress-every-ms N  Progress-frame cadence while executing [250]
  --metrics-out PATH   write the daemon's MetricsSnapshot JSON after the
                       graceful SIGTERM/SIGINT drain

Query client (campaign query) — grid-axis flags pick the grid, the
daemon executes (or answers warm) and aggregates:
  --connect EP         daemon endpoint (required)
  --group/--csv/--json as in a local run (grouping happens daemon-side)
  --store-out PATH     save the returned columnar store verbatim —
                       byte-identical to a local columnar save of the
                       same grid
  --progress           live progress line from streamed Progress frames
                       (an exact cache hit prints none)

The serve/work verbs take the same grid-axis flags as a local run; the worker's
HELLO carries the grid fingerprint and the coordinator rejects a
mismatch quoting both, so a serve/work pair can never silently compute
different campaigns.

Determinism: item RNG streams are keyed on (seed, item index) alone, so
any thread count, shard split, cancellation point, checkpoint/resume
split or distributed lease split reproduces the uninterrupted run
bit-identically.
)";
}

campaign::CampaignSpec spec_from_cli(const util::Cli& cli) {
  campaign::CampaignSpec spec;
  spec.apps = campaign::parse_app_list(cli.get("apps", "paper"));
  spec.emts = campaign::parse_emt_list(cli.get("emts", "paper"));
  spec.voltages = campaign::CampaignSpec::voltage_range(
      cli.get_double("vmin", 0.5), cli.get_double("vmax", 0.9),
      cli.get_double("step", 0.05));
  const auto pathologies = campaign::parse_pathology_list(
      cli.get("pathologies", "normal_sinus"));
  const auto record_seed =
      static_cast<std::uint64_t>(cli.get_int("record-seed", 7));
  for (const std::string& scale : util::split_list(cli.get("noise", "1"))) {
    for (ecg::Pathology p : pathologies) {
      spec.records.push_back(campaign::RecordAxis{
          p, util::parse_double_exact(scale), record_seed});
    }
  }
  spec.repetitions = static_cast<std::size_t>(cli.get_int("reps", 30));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2016));
  spec.ber_model = cli.get("ber-model", "log-linear");
  // Eager validation; the registry's unknown-name error lists valid names.
  (void)mem::ber_model_registry().descriptor(spec.ber_model);
  return spec.normalized();
}

/// `--list`: enumerate the component registries from their descriptors —
/// what can go into --apps/--emts/--ber-model, without instantiating
/// anything.
void print_registries() {
  util::Table table("Registered components");
  table.set_header({"kind", "name", "capabilities", "description"});
  const auto caps_of = [](const util::Descriptor& d) {
    std::string caps;
    for (const std::string& c : d.capabilities) {
      if (!caps.empty()) caps += ',';
      caps += c;
    }
    return caps.empty() ? std::string("-") : caps;
  };
  for (const std::string& name : apps::app_names()) {
    const auto d = apps::app_registry().descriptor(name);
    table.add_row({"app", name, caps_of(d), d.doc});
  }
  for (const std::string& name : core::emt_names()) {
    const auto d = core::emt_registry().descriptor(name);
    table.add_row({"emt", name, caps_of(d), d.doc});
  }
  for (const std::string& name : mem::ber_model_names()) {
    const auto d = mem::ber_model_registry().descriptor(name);
    table.add_row({"ber-model", name, caps_of(d), d.doc});
  }
  table.print(std::cout);
}

campaign::Shard shard_from_cli(const util::Cli& cli) {
  const std::string arg = cli.get("shard", "0/1");
  const auto slash = arg.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("--shard expects I/N, e.g. --shard 0/4");
  }
  campaign::Shard shard;
  shard.index = std::stoull(arg.substr(0, slash));
  shard.count = std::stoull(arg.substr(slash + 1));
  return shard;
}

campaign::GroupBy group_from_cli(const util::Cli& cli) {
  const std::string arg = cli.get("group", "record,app,emt,voltage");
  campaign::GroupBy group{false, false, false, false};
  for (const std::string& axis : util::split_list(arg)) {
    if (axis == "record") {
      group.record = true;
    } else if (axis == "app") {
      group.app = true;
    } else if (axis == "emt") {
      group.emt = true;
    } else if (axis == "voltage") {
      group.voltage = true;
    } else {
      throw std::invalid_argument(
          "--group axes: record, app, emt, voltage (got " + axis + ")");
    }
  }
  return group;
}

/// The --store-format choice (write side only; reads auto-detect).
campaign::StoreFormat store_format_from_cli(const util::Cli& cli) {
  return campaign::parse_store_format(cli.get("store-format", "text"));
}

void print_progress(const campaign::Progress& p) {
  std::ostringstream line;
  line << "[campaign] " << p.items_done << "/" << p.items_total << " items";
  if (p.items_resumed != 0) line << " (" << p.items_resumed << " resumed)";
  if (p.items_per_second > 0.0) {
    line << ", " << util::fmt(p.items_per_second_ewma, 1) << " items/s (avg "
         << util::fmt(p.items_per_second, 1) << ")";
    // The EWMA tracks the *current* rate — after a resume the lifetime
    // average is dragged down by the pre-restart gap and its ETA lies.
    const double eta_s = static_cast<double>(p.items_remaining()) /
                         p.items_per_second_ewma;
    line << ", ETA " << util::fmt(eta_s, 0) << "s";
  }
  if (p.cancelled) line << " [cancelled]";
  // One line, rewritten in place; callers newline-terminate at the end.
  std::cerr << '\r' << line.str() << "          " << std::flush;
}

/// One-line metrics digest for --metrics-every, routed through the
/// (thread-safe) logger so it interleaves cleanly with worker output.
std::string metrics_line(const util::telemetry::MetricsSnapshot& m) {
  const auto counter = [&m](const char* name) -> std::uint64_t {
    const auto it = m.counters.find(name);
    return it == m.counters.end() ? 0 : it->second;
  };
  std::ostringstream os;
  os << "telemetry: items=" << counter("session.items_executed")
     << " claims=" << counter("workpool.claims")
     << " steals=" << counter("workpool.steals") << " busy_s="
     << util::fmt(static_cast<double>(counter("workpool.busy_ns")) / 1e9, 1)
     << " idle_s="
     << util::fmt(static_cast<double>(counter("workpool.idle_ns")) / 1e9, 1);
  if (const auto it = m.histograms.find("session.item_ns");
      it != m.histograms.end() && it->second.count() != 0) {
    os << " item_ms_p50=" << util::fmt(it->second.quantile(0.5) / 1e6, 1)
       << " p95=" << util::fmt(it->second.quantile(0.95) / 1e6, 1);
  }
  if (const auto it = m.counters.find("mem.fault_patch_words");
      it != m.counters.end()) {
    os << " fault_patches=" << it->second;
  }
  return os.str();
}

void write_metrics_json(const util::telemetry::MetricsSnapshot& m,
                        const std::string& path) {
  std::ofstream f(path);
  m.write_json(f);
  if (!f) throw std::runtime_error("failed to write " + path);
  std::cerr << "[campaign] wrote metrics " << path << '\n';
}

void write_trace_json(const std::string& path) {
  util::telemetry::trace::stop();
  std::ofstream f(path);
  util::telemetry::trace::write_chrome_json(f);
  if (!f) throw std::runtime_error("failed to write " + path);
  std::cerr << "[campaign] wrote trace " << path << " ("
            << util::telemetry::trace::event_count() << " events)\n";
}

void export_rows(const util::Cli& cli,
                 const std::vector<campaign::AggregateRow>& rows) {
  campaign::rows_to_table(
      rows, "Campaign aggregates (" + std::to_string(rows.size()) + " groups)")
      .print(std::cout);

  if (const std::string path = cli.get("csv", ""); !path.empty()) {
    std::ofstream f(path);
    campaign::write_rows_csv(f, rows);
    if (!f) throw std::runtime_error("failed to write " + path);
    std::cerr << "[campaign] wrote " << path << '\n';
  }
  if (const std::string path = cli.get("json", ""); !path.empty()) {
    std::ofstream f(path);
    campaign::write_rows_json(f, rows);
    if (!f) throw std::runtime_error("failed to write " + path);
    std::cerr << "[campaign] wrote " << path << '\n';
  }
}

void export_aggregates(const util::Cli& cli,
                       const campaign::ResultStore& store) {
  export_rows(cli, store.aggregate(group_from_cli(cli)));
}

/// --merge-stores: reassemble shard/checkpoint stores instead of
/// executing. Two regimes behind one flag:
///  - out-of-core (every input columnar, --store-format columnar and a
///    --store-out target): shards fold by append — sample bytes are
///    concatenated verbatim, only the index is re-sorted — and the
///    merged store aggregates streaming off its mapping. Memory never
///    scales with the sample data, so this handles stores larger than
///    RAM.
///  - in-memory (anything else, including mixed formats): each input is
///    materialized and folded with ResultStore::merge, preserving the
///    small-store fast path and text/columnar interop.
/// Both produce bit-identical aggregate rows (shared fold).
void run_merge_stores(const util::Cli& cli, const campaign::CampaignSpec& spec,
                      const std::string& list) {
  const std::vector<std::string> paths = util::split_list(list);
  const std::string store_out = cli.get("store-out", "");
  const campaign::StoreFormat out_format = store_format_from_cli(cli);

  bool all_columnar = true;
  for (const std::string& path : paths) {
    all_columnar = all_columnar && campaign::detect_store_format(path) ==
                                       campaign::StoreFormat::kColumnar;
  }

  if (all_columnar && out_format == campaign::StoreFormat::kColumnar &&
      !store_out.empty()) {
    campaign::ColumnarStore::append_merge(paths, store_out, spec);
    const campaign::ColumnarStore merged =
        campaign::ColumnarStore::open(store_out, spec);
    std::cerr << "[campaign] appended " << paths.size()
              << " columnar shards into " << store_out << " ("
              << merged.items_done() << " items, "
              << (merged.mapped() ? "mapped" : "buffered") << ")\n";
    export_rows(cli, merged.aggregate(group_from_cli(cli)));
    return;
  }

  campaign::ResultStore merged(spec);
  for (const std::string& path : paths) {
    const auto reader = campaign::StoreReader::open(path, spec);
    merged.merge(reader.materialize());
  }
  if (!store_out.empty()) {
    campaign::save_store(merged, store_out, out_format);
    std::cerr << "[campaign] wrote merged store " << store_out << " ("
              << campaign::to_string(out_format) << ")\n";
  }
  export_aggregates(cli, merged);
}

/// `campaign serve`: coordinate a distributed campaign.
int run_serve(const util::Cli& cli) {
  enforce_flags(cli,
                {"listen", "lease-items", "lease-ttl", "heartbeat-ms",
                 "spool-dir", "store-out", "metrics-out", "help"},
                "serve");
  const campaign::CampaignSpec spec =
      parse_flags([&cli] { return spec_from_cli(cli); });

  dist::Coordinator::Options options;
  options.listen = cli.get("listen", "");
  if (options.listen.empty()) {
    throw UsageError(
        "campaign serve requires --listen HOST:PORT or --listen unix:/path");
  }
  options.spool_dir = cli.get("spool-dir", "");
  if (options.spool_dir.empty()) {
    throw UsageError("campaign serve requires --spool-dir DIR");
  }
  options.store_out = cli.get("store-out", "");
  if (options.store_out.empty()) {
    throw UsageError("campaign serve requires --store-out PATH");
  }
  options.lease_items = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("lease-items", 256)));
  options.lease_ttl_ms = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("lease-ttl", 10'000)));
  options.heartbeat_ms = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("heartbeat-ms", 2'000)));
  options.metrics_out = cli.get("metrics-out", "");

  dist::Coordinator coordinator(spec, options);
  std::cerr << "[campaign] serving " << spec.item_count() << " items on "
            << coordinator.endpoint() << " (leases of "
            << options.lease_items << " items, TTL " << options.lease_ttl_ms
            << " ms)\n";
  const dist::Coordinator::Report report = coordinator.serve();
  std::cerr << "[campaign] campaign complete: " << report.workers_seen
            << " workers, " << report.leases_granted << " leases granted ("
            << report.leases_expired << " expired, " << report.leases_revoked
            << " revoked, " << report.stale_results << " stale results), "
            << report.shards_ingested << " shards / " << report.ingest_bytes
            << " bytes ingested\n";
  std::cerr << "[campaign] wrote merged store " << options.store_out << '\n';
  if (!options.metrics_out.empty()) {
    std::cerr << "[campaign] wrote merged worker metrics "
              << options.metrics_out << '\n';
  }
  return 0;
}

/// `campaign work`: execute leases for a coordinator.
int run_work(const util::Cli& cli) {
  enforce_flags(cli,
                {"connect", "name", "threads", "checkpoint-dir",
                 "checkpoint-every", "help"},
                "work");
  const campaign::CampaignSpec spec =
      parse_flags([&cli] { return spec_from_cli(cli); });

  dist::Worker::Options options;
  options.connect = cli.get("connect", "");
  if (options.connect.empty()) {
    throw UsageError(
        "campaign work requires --connect HOST:PORT or --connect unix:/path");
  }
  options.name = cli.get("name", "worker");
  options.threads = static_cast<unsigned>(
      std::max<std::int64_t>(0, cli.get_int("threads", 0)));
  options.checkpoint_dir = cli.get("checkpoint-dir", "");
  options.checkpoint_every = static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("checkpoint-every", 0)));

  dist::Worker worker(spec, options);
  std::cerr << "[campaign] worker " << options.name << " connecting to "
            << options.connect << '\n';
  const dist::Worker::Report report = worker.run();
  std::cerr << "[campaign] worker " << options.name << " done: "
            << report.leases_completed << " leases, "
            << report.items_executed << " items\n";
  return 0;
}

/// The daemon being served by this process, for the signal handlers.
/// request_stop() is async-signal-safe (one self-pipe write).
std::atomic<serve::Daemon*> g_daemon{nullptr};

void handle_stop_signal(int) {
  if (serve::Daemon* daemon = g_daemon.load()) daemon->request_stop();
}

/// `campaign daemon`: answer spec queries from a warm session + cache.
int run_daemon(const util::Cli& cli) {
  enforce_flags(cli,
                {"listen", "cache-dir", "cache-budget-mb", "threads",
                 "progress-every-ms", "metrics-out", "help"},
                "daemon");
  serve::Daemon::Options options;
  options.listen = cli.get("listen", "");
  if (options.listen.empty()) {
    throw UsageError(
        "campaign daemon requires --listen HOST:PORT or --listen unix:/path");
  }
  options.cache_dir = cli.get("cache-dir", "");
  if (options.cache_dir.empty()) {
    throw UsageError(
        "campaign daemon requires --cache-dir DIR (the persistent result "
        "cache)");
  }
  options.cache_budget_bytes = static_cast<std::uint64_t>(std::max<
      std::int64_t>(1, cli.get_int("cache-budget-mb", 256))) << 20;
  options.threads = static_cast<unsigned>(
      std::max<std::int64_t>(0, cli.get_int("threads", 0)));
  options.progress_every_ms = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("progress-every-ms", 250)));
  const std::string metrics_out = cli.get("metrics-out", "");
  if (!metrics_out.empty()) util::telemetry::set_hot_timing(true);

  serve::Daemon daemon(options);
  g_daemon.store(&daemon);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::cerr << "[campaign] query daemon on " << daemon.endpoint()
            << " (cache " << daemon.cache().dir() << ": "
            << daemon.cache().entries() << " warm entries, "
            << daemon.cache().bytes() << " bytes)\n";

  const serve::Daemon::Report report = daemon.run();
  g_daemon.store(nullptr);
  std::cerr << "[campaign] daemon drained: " << report.clients
            << " clients, " << report.queries << " queries ("
            << report.cache_hits << " hits, " << report.gap_fills
            << " gap-fills, " << report.cold_runs << " cold, "
            << report.errors << " errors), " << report.items_executed
            << " items executed, " << report.items_reused << " reused\n";
  if (!metrics_out.empty()) write_metrics_json(daemon.telemetry(), metrics_out);
  return 0;
}

/// `campaign query`: ask a daemon for a grid. The same axis flags as a
/// local run describe what to compute; the table/--csv/--json exports
/// come from the daemon's aggregation (exact double round-trip), and
/// --store-out saves the returned columnar bytes verbatim.
int run_query(const util::Cli& cli) {
  enforce_flags(cli,
                {"connect", "group", "csv", "json", "store-out", "progress",
                 "help"},
                "query");
  const campaign::CampaignSpec spec =
      parse_flags([&cli] { return spec_from_cli(cli); });
  const campaign::GroupBy group =
      parse_flags([&cli] { return group_from_cli(cli); });
  const std::string connect = cli.get("connect", "");
  if (connect.empty()) {
    throw UsageError(
        "campaign query requires --connect HOST:PORT or --connect unix:/path");
  }
  const std::string store_out = cli.get("store-out", "");

  serve::Client client = serve::Client::connect(connect);
  serve::Client::QueryOptions options;
  options.want_store = !store_out.empty();
  options.want_rows = true;
  options.group = group;
  const bool show_progress = cli.has("progress");
  bool printed_progress = false;
  if (show_progress) {
    options.on_progress = [&printed_progress](const serve::Progress& p) {
      std::cerr << '\r' << "[campaign] " << p.items_done << "/"
                << p.items_total << " items          " << std::flush;
      printed_progress = true;
    };
  }

  const serve::Result result = client.query(spec, options);
  if (printed_progress) std::cerr << '\n';
  std::cerr << "[campaign] " << serve::to_string(result.status)
            << " answer from " << connect << ": " << result.items_executed
            << " of " << result.items_total << " items executed\n";
  if (!store_out.empty()) {
    std::ofstream f(store_out, std::ios::binary);
    f.write(reinterpret_cast<const char*>(result.store_bytes.data()),
            static_cast<std::streamsize>(result.store_bytes.size()));
    if (!f) throw std::runtime_error("failed to write " + store_out);
    std::cerr << "[campaign] wrote raw store " << store_out << " (columnar, "
              << result.store_bytes.size() << " bytes)\n";
  }
  std::istringstream rows_in(result.rows_csv);
  export_rows(cli, campaign::read_rows_csv(rows_in));
  return 0;
}

/// The classic single-process mode (no verb).
int run_local(const util::Cli& cli) {
  {
    enforce_flags(cli,
                  {"threads", "shard", "progress", "max-items",
                   "checkpoint-every", "resume", "trace", "metrics-out",
                   "metrics-every", "merge-metrics", "store-out",
                   "store-format", "group", "csv", "json", "merge-stores",
                   "list", "help"},
                  "");
    if (cli.has("list")) {
      print_registries();
      return 0;
    }
    // Metrics-merge mode: fold saved snapshots (the distributed-mode
    // shape: one metrics JSON per worker process) without executing.
    if (const std::string list = cli.get("merge-metrics", "");
        !list.empty()) {
      util::telemetry::MetricsSnapshot merged;
      for (const std::string& path : util::split_list(list)) {
        std::ifstream f(path);
        if (!f) throw std::runtime_error("cannot open " + path);
        merged.merge(util::telemetry::MetricsSnapshot::read_json(f));
      }
      const std::string out = cli.get("metrics-out", "");
      if (out.empty()) {
        merged.write_json(std::cout);
      } else {
        write_metrics_json(merged, out);
      }
      return 0;
    }

    const campaign::CampaignSpec spec =
        parse_flags([&cli] { return spec_from_cli(cli); });
    // Validate the export/execution flag values up front — a bad --group
    // or --store-format must exit 2 before any compute happens.
    parse_flags([&cli] {
      (void)group_from_cli(cli);
      (void)store_format_from_cli(cli);
    });

    // Merge mode: reassemble shard/checkpoint stores instead of executing.
    if (const std::string list = cli.get("merge-stores", ""); !list.empty()) {
      run_merge_stores(cli, spec, list);
      return 0;
    }

    campaign::SubmitOptions options;
    options.shard = parse_flags([&cli] { return shard_from_cli(cli); });

    // Resume: adopt a previous run's raw store (fingerprint-checked
    // against this invocation's axes) and execute only the gaps.
    campaign::ResultStore resume_store;
    if (const std::string path = cli.get("resume", ""); !path.empty()) {
      const auto reader = campaign::StoreReader::open(path, spec);
      resume_store = reader.materialize();
      options.resume_from = &resume_store;
      std::cerr << "[campaign] resuming from " << path << " ("
                << campaign::to_string(reader.format()) << ", "
                << resume_store.items_done() << " items already done)\n";
    }

    const std::string store_out = cli.get("store-out", "");
    const campaign::StoreFormat store_format = store_format_from_cli(cli);
    const auto checkpoint_every =
        static_cast<std::size_t>(std::max<std::int64_t>(
            0, cli.get_int("checkpoint-every", 0)));
    if (checkpoint_every != 0) {
      if (store_out.empty()) {
        throw UsageError(
            "--checkpoint-every requires --store-out PATH (the checkpoint "
            "target)");
      }
      options.checkpoint_every = checkpoint_every;
      options.on_checkpoint = [&store_out,
                               store_format](const campaign::ResultStore& s) {
        campaign::save_store(s, store_out, store_format);
      };
    }

    // Telemetry activation, armed before the Session so its baseline and
    // the trace epoch precede the first worker span.
    const std::string trace_out = cli.get("trace", "");
    const std::string metrics_out = cli.get("metrics-out", "");
    const auto metrics_every_s = static_cast<std::size_t>(
        std::max<std::int64_t>(0, cli.get_int("metrics-every", 0)));
    if (!trace_out.empty()) util::telemetry::trace::start();
    if (!metrics_out.empty() || metrics_every_s != 0) {
      util::telemetry::set_hot_timing(true);
    }

    campaign::Session session = campaign::Session::from_cli(cli);
    std::cerr << "[campaign] " << spec.records.size() << " records x "
              << spec.apps.size() << " apps x " << spec.emts.size()
              << " emts x " << spec.voltages.size() << " voltages x "
              << spec.repetitions << " reps = " << spec.item_count()
              << " items (" << spec.cell_count() << " cells), shard "
              << options.shard.index << "/" << options.shard.count
              << " on up to " << session.threads() << " threads\n";

    const campaign::CampaignHandle handle = session.submit(spec, options);

    // Drive the handle: stream progress, honour --max-items via the
    // cooperative cancel, and pick up the store when the job lands.
    const auto max_items = static_cast<std::size_t>(
        std::max<std::int64_t>(0, cli.get_int("max-items", 0)));
    const bool show_progress = cli.has("progress");
    campaign::ResultStore store;
    if (!show_progress && max_items == 0 && metrics_every_s == 0) {
      store = handle.take();
    } else {
      auto next_metrics = std::chrono::steady_clock::now() +
                          std::chrono::seconds(metrics_every_s);
      for (;;) {
        const campaign::Progress p = handle.progress();
        if (show_progress) print_progress(p);
        if (metrics_every_s != 0 &&
            std::chrono::steady_clock::now() >= next_metrics) {
          if (show_progress) std::cerr << '\n';  // leave the \r line intact
          util::log_info(metrics_line(session.telemetry()));
          next_metrics += std::chrono::seconds(metrics_every_s);
        }
        if (max_items != 0 && !p.cancelled &&
            p.items_done - p.items_resumed >= max_items) {
          handle.cancel();
        }
        if (p.finished) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (show_progress) {
        print_progress(handle.progress());
        std::cerr << '\n';
      }
      store = handle.take();
    }

    if (!store_out.empty()) {
      campaign::save_store(store, store_out, store_format);
      std::cerr << "[campaign] wrote raw store " << store_out << " ("
                << campaign::to_string(store_format) << ", "
                << store.items_done() << " items)\n";
    }
    if (!metrics_out.empty()) {
      write_metrics_json(session.telemetry(), metrics_out);
    }
    if (!trace_out.empty()) write_trace_json(trace_out);
    if (store.complete()) {
      export_aggregates(cli, store);
    } else if (handle.progress().cancelled) {
      std::cerr << "[campaign] stopped after " << store.items_done()
                << " items; complete the grid later with --resume "
                << (store_out.empty() ? std::string("<store>") : store_out)
                << '\n';
    } else {
      std::cerr << "[campaign] shard store incomplete by design; merge all "
                   "shards with --merge-stores to aggregate\n";
    }
    return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    if (cli.has("help")) {
      print_help();
      return 0;
    }
    const auto& verbs = cli.positional();
    if (verbs.empty()) return run_local(cli);
    if (verbs.size() > 1) {
      throw UsageError("expected one verb, got '" + verbs[0] + "' and '" +
                       verbs[1] + "'");
    }
    if (verbs[0] == "serve") return run_serve(cli);
    if (verbs[0] == "work") return run_work(cli);
    if (verbs[0] == "daemon") return run_daemon(cli);
    if (verbs[0] == "query") return run_query(cli);
    throw UsageError("unknown verb '" + verbs[0] +
                     "' (verbs: serve, work, daemon, query; see --help)");
  } catch (const UsageError& e) {
    std::cerr << "campaign: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "campaign: " << e.what() << '\n';
    return 1;
  }
}
