// Quickstart: protect a biosignal buffer with DREAM in ~40 lines.
//
// Generates a synthetic ECG, stores it in a voltage-scaled (faulty) data
// memory at 0.60 V with and without DREAM, and prints the resulting signal
// quality. Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/protected_buffer.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/metrics/quality.hpp"
#include "ulpdream/util/rng.hpp"

using namespace ulpdream;

int main() {
  // 1. A signal to protect: one synthetic ECG record (MIT-BIH substitute).
  const ecg::Record record = ecg::make_default_record();

  // 2. A fault environment: the BER of a 32 nm low-power SRAM at 0.60 V.
  const double voltage = 0.60;
  const auto ber_model = mem::make_ber_model("log-linear");
  util::Xoshiro256 rng(1);
  const mem::FaultMap faults = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, 22, ber_model->ber(voltage), rng);
  std::cout << "BER(" << voltage << " V) = " << ber_model->ber(voltage)
            << " -> " << faults.fault_count() << " stuck cells in 32 kB\n\n";

  // 3. Store and read back the record through each EMT.
  const std::vector<double> original(record.samples.begin(),
                                     record.samples.begin() + 2048);
  for (const std::string& name : core::paper_emt_names()) {
    const auto emt = core::make_emt(name);
    core::MemorySystem system(*emt);
    system.attach_faults(&faults);
    auto buffer = core::ProtectedBuffer::allocate(system, 2048);
    for (std::size_t i = 0; i < 2048; ++i) {
      buffer.set(i, record.samples[i]);
    }
    std::vector<double> readback(2048);
    for (std::size_t i = 0; i < 2048; ++i) {
      readback[i] = static_cast<double>(buffer.get(i));
    }
    std::cout << emt->name() << ": SNR = "
              << metrics::snr_db(original, readback) << " dB"
              << "  (extra bits/word: " << emt->extra_bits()
              << ", words corrected: " << system.counters().corrected_words
              << ")\n";
  }
  std::cout << "\nDREAM recovers the sign-extension MSBs where errors hurt"
               " most — at a lower bit overhead than ECC SEC/DED.\n";
  return 0;
}
