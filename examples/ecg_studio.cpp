// ECG studio: inspect the synthetic database that substitutes MIT-BIH —
// per-pathology rhythm statistics, the sample-value properties DREAM
// exploits (negativity, sign-run lengths), and an ASCII strip preview.
//
// Usage: ecg_studio [--seed 42] [--plot-rows 12]

#include <algorithm>
#include <iostream>

#include "ulpdream/ecg/database.hpp"
#include "ulpdream/fixed/sample.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/stats.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

namespace {

void ascii_plot(const ecg::Record& rec, std::size_t rows,
                std::size_t samples) {
  const std::size_t n = std::min(samples, rec.samples.size());
  const std::size_t cols = 100;
  fixed::Sample lo = fixed::kSampleMax;
  fixed::Sample hi = fixed::kSampleMin;
  for (std::size_t i = 0; i < n; ++i) {
    lo = std::min(lo, rec.samples[i]);
    hi = std::max(hi, rec.samples[i]);
  }
  const double span = std::max(1, hi - lo);
  std::vector<std::string> grid(rows, std::string(cols, ' '));
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t i = c * n / cols;
    const double frac = (rec.samples[i] - lo) / span;
    const auto r = static_cast<std::size_t>(
        (1.0 - frac) * static_cast<double>(rows - 1));
    grid[r][c] = '*';
  }
  for (const auto& line : grid) std::cout << "  |" << line << "|\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  ecg::DatabaseConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.records_per_pathology = 1;
  const auto rows = static_cast<std::size_t>(cli.get_int("plot-rows", 10));

  const std::vector<ecg::Record> db = ecg::make_database(cfg);

  util::Table table("Synthetic ECG database (MIT-BIH substitute)");
  table.set_header({"record", "beats", "mean_HR_bpm", "negative_%",
                    "mean_sign_run", "P_waves"});
  for (const auto& rec : db) {
    const double duration_s =
        static_cast<double>(rec.samples.size()) / rec.fs_hz;
    const double hr =
        static_cast<double>(rec.r_locations.size()) / duration_s * 60.0;
    std::size_t negative = 0;
    util::RunningStats runs;
    for (const auto s : rec.samples) {
      if (s < 0) ++negative;
      runs.add(fixed::sign_run_length(s));
    }
    std::size_t p_waves = 0;
    for (const auto& f : rec.truth) {
      if (f.type == metrics::FiducialType::kP) ++p_waves;
    }
    table.add_row(
        {rec.name, std::to_string(rec.r_locations.size()), util::fmt(hr, 0),
         util::fmt(100.0 * static_cast<double>(negative) /
                       static_cast<double>(rec.samples.size()),
                   1),
         util::fmt(runs.mean(), 1), std::to_string(p_waves)});
  }
  table.print(std::cout);

  std::cout << "\nThe two properties DREAM exploits are visible above:\n"
               "  - most samples are negative (stuck-at-1 MSB faults often"
               " hidden, paper Sec. III);\n"
               "  - long constant-MSB runs (mean sign-run >> 1) give DREAM"
               " a wide protected region (Sec. IV).\n\n";

  for (const auto& rec : db) {
    std::cout << rec.name << " (first 3 s):\n";
    ascii_plot(rec, rows, static_cast<std::size_t>(3.0 * rec.fs_hz));
    std::cout << '\n';
  }
  return 0;
}
