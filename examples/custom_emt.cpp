// Extending ulpdream from *outside* src/: define a new error-mitigation
// technique, register it under a name, and run it through the campaign
// engine next to the built-ins — no enum edited, no switch touched, no
// library source modified. This is the extension contract the registry
// redesign exists for, and CI runs it as a smoke test.
//
// The technique ("tmr_msb") is deliberately simple: triplicate the two
// sign-run MSBs into a 20-bit payload and majority-vote them on decode —
// a poor man's DREAM that needs no side memory. The point is not the
// codec; it is that a 60-line user type participates in Scenario grids,
// aggregation and the determinism guarantees exactly like "dream" does.
//
// Usage: custom_emt [--reps 4] [--threads 4]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include <ulpdream/ulpdream.hpp>

#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

namespace {

/// Triple-Modular-Redundancy on the two MSBs of each 16-bit sample.
/// Payload layout: bits 0..15 = the raw sample; bits 16/17 = copies of
/// bit 15; bits 18/19 = copies of bit 14.
class TmrMsb final : public ulpdream::core::Emt {
 public:
  [[nodiscard]] std::string name() const override { return "tmr_msb"; }
  [[nodiscard]] int payload_bits() const override { return 20; }
  [[nodiscard]] int safe_bits() const override { return 0; }

  [[nodiscard]] std::uint32_t encode_payload(
      ulpdream::fixed::Sample s) const override {
    const auto u = static_cast<std::uint16_t>(s);
    const std::uint32_t b15 = (u >> 15) & 1u;
    const std::uint32_t b14 = (u >> 14) & 1u;
    return u | (b15 << 16) | (b15 << 17) | (b14 << 18) | (b14 << 19);
  }
  [[nodiscard]] std::uint16_t encode_safe(
      ulpdream::fixed::Sample) const override {
    return 0;
  }
  [[nodiscard]] ulpdream::fixed::Sample decode(
      std::uint32_t payload, std::uint16_t,
      ulpdream::core::CodecCounters* counters = nullptr) const override {
    const auto raw = static_cast<std::uint16_t>(payload & 0xFFFFu);
    const auto majority = [payload](int data_bit, int c1, int c2) {
      const std::uint32_t votes = ((payload >> data_bit) & 1u) +
                                  ((payload >> c1) & 1u) +
                                  ((payload >> c2) & 1u);
      return votes >= 2 ? 1u : 0u;
    };
    std::uint16_t data = raw;
    data = static_cast<std::uint16_t>(
        (data & 0x7FFFu) | (majority(15, 16, 17) << 15));
    data = static_cast<std::uint16_t>(
        (data & 0xBFFFu) | (majority(14, 18, 19) << 14));
    if (counters != nullptr) {
      ++counters->decodes;
      if (data != raw) ++counters->corrected_words;
    }
    return static_cast<ulpdream::fixed::Sample>(data);
  }

  [[nodiscard]] double encode_energy_pj() const override { return 0.10; }
  [[nodiscard]] double decode_energy_pj() const override { return 0.20; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ulpdream;
  const util::Cli cli(argc, argv);
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 4));
  const auto threads =
      static_cast<unsigned>(std::max<std::int64_t>(0, cli.get_int("threads", 4)));

  // 1. Register the technique — one call, from application code.
  core::emt_registry().register_factory(
      "tmr_msb", [] { return std::make_unique<TmrMsb>(); },
      {"TMR on 2 MSBs",
       "triplicates the two sign-run MSBs, majority-votes on decode",
       {core::kCapCorrectsErrors, "custom"}});

  // The registries now enumerate it like any built-in — this is what a
  // CLI's --list or a campaign spec validator sees.
  std::cout << "Registered EMTs:\n";
  for (const std::string& name : core::emt_names()) {
    const Descriptor d = core::emt_registry().descriptor(name);
    std::printf("  %-14s %s\n", name.c_str(), d.doc.c_str());
  }
  std::cout << '\n';

  // 2. Run it through a campaign grid, by name, next to the built-ins.
  const auto scenario = [&](unsigned n_threads) {
    return Scenario()
        .app("dwt")
        .emt("none")
        .emt("dream")
        .emt("tmr_msb")
        .voltage(0.6)
        .voltage(0.8)
        .record(ecg::Pathology::kNormalSinus, 1.0, 7)
        .repetitions(reps)
        .threads(n_threads);
  };
  const std::vector<AggregateRow> rows = scenario(threads).run_rows();
  campaign::rows_to_table(rows, "Custom EMT vs built-ins (DWT)")
      .print(std::cout);

  // 3. The engine's guarantees hold for user components too: aggregates
  // are bit-identical for any thread count.
  const std::vector<AggregateRow> serial_rows = scenario(1).run_rows();
  bool deterministic = rows.size() == serial_rows.size();
  for (std::size_t i = 0; deterministic && i < rows.size(); ++i) {
    deterministic = rows[i].emt == serial_rows[i].emt &&
                    rows[i].snr_mean_db == serial_rows[i].snr_mean_db &&
                    rows[i].energy_mean_j == serial_rows[i].energy_mean_j &&
                    rows[i].corrected_mean == serial_rows[i].corrected_mean;
  }

  // 4. Sanity: the custom technique actually corrected words at 0.6 V.
  double tmr_corrected = 0.0;
  for (const AggregateRow& r : rows) {
    if (r.emt == "tmr_msb" && r.voltage == 0.6) tmr_corrected = r.corrected_mean;
  }

  std::cout << "\nchecks:\n";
  std::cout << "  bit-identical across thread counts: "
            << (deterministic ? "PASS" : "FAIL") << '\n';
  std::cout << "  custom EMT corrected words at 0.6 V: "
            << (tmr_corrected > 0.0 ? "PASS" : "FAIL") << '\n';
  return deterministic && tmr_corrected > 0.0 ? 0 : 1;
}
