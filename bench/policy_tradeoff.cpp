// Reproduces Sec. VI-C: quality-constrained voltage/EMT policy for the DWT
// application with a -1 dB output-degradation tolerance. Paper result:
// three triggering ranges (~[0.9;0.85] none, [0.85;0.65] DREAM,
// [0.65;0.55] ECC) saving up to 12.7% / 30.6% / 39.5% vs nominal-voltage
// unprotected operation.

#include <iostream>

#include "ulpdream/campaign/engine.hpp"
#include "ulpdream/sim/policy_explorer.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  // The Sec. VI-C grid as a declarative campaign: DWT x all paper EMTs x
  // the full voltage window on the default trace.
  campaign::CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = core::paper_emt_names();
  spec.records = {campaign::RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7}};
  spec.repetitions = static_cast<std::size_t>(cli.get_int("runs", 100));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2016));
  const double tolerance = cli.get_double("tolerance-db", 1.0);

  const double min_snr = cli.get_double("min-snr-db", 40.0);

  const campaign::CampaignEngine engine = campaign::CampaignEngine::from_cli(cli);
  std::cerr << "[policy] sweeping DWT, " << spec.repetitions
            << " runs/point on up to " << engine.threads() << " threads...\n";
  const sim::SweepResult sweep = engine.run(spec).to_sweep_result(0, 0);

  const auto print_policy = [&](const sim::PolicyResult& policy,
                                const std::string& title,
                                const char* const paper_savings[3]) {
    std::cout << title << " (requirement: "
              << util::fmt(policy.required_snr_db, 2) << " dB)\n";
    util::Table ops("Per-EMT operating points (DWT)");
    ops.set_header({"emt", "min_safe_V", "snr_at_floor_dB", "energy_uJ",
                    "savings_%", "paper_savings_%"});
    int i = 0;
    for (const auto& p : policy.points) {
      ops.add_row(
          {p.emt,
           p.feasible ? util::fmt(p.min_safe_voltage, 2) : "infeasible",
           util::fmt(p.snr_at_floor_db, 1),
           util::fmt(p.energy_at_floor_j * 1e6, 4),
           util::fmt(p.savings_vs_nominal_frac * 100.0, 1),
           paper_savings[i++]});
    }
    ops.print(std::cout);
    util::Table ranges("Derived EMT-triggering voltage ranges");
    ranges.set_header({"v_low", "v_high", "emt"});
    for (const auto& r : policy.policy.ranges()) {
      ranges.add_row({util::fmt(r.v_low, 2), util::fmt(r.v_high, 2), r.emt});
    }
    ranges.print(std::cout);
    std::cout << '\n';
  };

  std::cout << "Max SNR (error-free fixed-point vs double-precision): "
            << util::fmt(sweep.max_snr_db, 2) << " dB\n\n";

  // Criterion 1: the paper's literal "-1 dB from max" tolerance. NOTE:
  // our fixed-point DWT has a higher quantization ceiling than the
  // paper's implementation, which makes this criterion stricter here —
  // see EXPERIMENTS.md for the discussion.
  const char* paper_rel[] = {"12.7", "30.6", "39.5"};
  const sim::PolicyResult relative = sim::explore_policy(
      sweep, tolerance, sim::QualityCriterion::kRelativeDrop);
  print_policy(relative,
               "Criterion A - relative: max SNR - " +
                   util::fmt(tolerance, 1) + " dB (paper Sec. VI-C form)",
               paper_rel);

  // Criterion 2: absolute clinical quality floor (paper Sec. III cites
  // 35-40 dB as the reconstruction-quality requirement for ECG) on the
  // P10 statistic — "reliable medical output": 90% of runs must comply.
  const char* paper_abs[] = {"12.7", "30.6", "39.5"};
  const sim::PolicyResult absolute = sim::explore_policy(
      sweep, min_snr, sim::QualityCriterion::kAbsoluteSnr,
      sim::QualityStatistic::kP10);
  print_policy(absolute,
               "Criterion B - reliable: P10 SNR >= " + util::fmt(min_snr, 0) +
                   " dB (clinical requirement form)",
               paper_abs);
  (void)sweep;

  const auto savings = [](const sim::PolicyResult& p, const std::string& k) {
    for (const auto& op : p.points) {
      if (op.emt == k && op.feasible) return op.savings_vs_nominal_frac;
    }
    return -1.0;
  };
  const auto floor_v = [](const sim::PolicyResult& p, const std::string& k) {
    for (const auto& op : p.points) {
      if (op.emt == k && op.feasible) return op.min_safe_voltage;
    }
    return 1.0;
  };
  const double a_none = savings(absolute, "none");
  const double a_dream = savings(absolute, "dream");
  const double a_ecc = savings(absolute, "ecc_secded");
  const double r_none = savings(relative, "none");
  std::cout << "Shape checks:\n";
  std::cout << "  relative criterion: unprotected floor ~0.85 V, ~12% saving"
               " (paper 12.7%): "
            << (std::abs(r_none - 0.127) < 0.05 ? "PASS" : "FAIL") << '\n';
  std::cout << "  protection unlocks deeper voltage floors"
               " (ecc <= dream < none): "
            << ((floor_v(absolute, "ecc_secded") <=
                 floor_v(absolute, "dream")) &&
                        (floor_v(absolute, "dream") <
                         floor_v(absolute, "none"))
                    ? "PASS"
                    : "FAIL")
            << '\n';
  std::cout << "  absolute criterion: all three EMTs feasible with positive"
               " savings: "
            << ((a_none > 0 && a_dream > 0 && a_ecc > 0) ? "PASS" : "FAIL")
            << '\n';
  return 0;
}
