// Reproduces Sec. VI-B: per-voltage system energy for each EMT and the
// protection-overhead percentages vs unprotected operation. Paper values:
// ECC SEC/DED ~ +55%, DREAM ~ +34% (a 21% reduction of the overhead).
// Energy does not depend on the random fault content in our model (access
// traces are fault-invariant), so few Monte-Carlo runs suffice.

#include <iostream>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/parallel_sweep.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sim::SweepConfig cfg = sim::SweepConfig::defaults();
  cfg.runs = static_cast<std::size_t>(cli.get_int("runs", 2));
  const ecg::Record record = ecg::make_default_record(7);

  const sim::ParallelSweepRunner runner =
      sim::ParallelSweepRunner::from_cli(cli);

  double grand_none = 0.0;
  double grand_dream = 0.0;
  double grand_ecc = 0.0;

  for (const std::string& name : apps::paper_app_names()) {
    const auto app = apps::make_app(name);
    std::cerr << "[energy] " << app->name() << "...\n";
    const sim::SweepResult res = runner.run(*app, record, cfg);

    util::Table table(std::string("Sec. VI-B - energy per run [uJ], app = ") +
                      app->name());
    table.set_header({"V", "none", "dream", "ecc_secded", "dream_ovh_%",
                      "ecc_ovh_%"});
    double sum_none = 0.0;
    double sum_dream = 0.0;
    double sum_ecc = 0.0;
    for (auto it = cfg.voltages.rbegin(); it != cfg.voltages.rend(); ++it) {
      const double v = *it;
      const double e_none =
          res.find("none", v)->energy_mean_j * 1e6;
      const double e_dream =
          res.find("dream", v)->energy_mean_j * 1e6;
      const double e_ecc =
          res.find("ecc_secded", v)->energy_mean_j * 1e6;
      sum_none += e_none;
      sum_dream += e_dream;
      sum_ecc += e_ecc;
      table.add_row({util::fmt(v, 2), util::fmt(e_none, 4),
                     util::fmt(e_dream, 4), util::fmt(e_ecc, 4),
                     util::fmt((e_dream / e_none - 1.0) * 100.0, 1),
                     util::fmt((e_ecc / e_none - 1.0) * 100.0, 1)});
    }
    table.add_row({"avg", util::fmt(sum_none / 9.0, 4),
                   util::fmt(sum_dream / 9.0, 4), util::fmt(sum_ecc / 9.0, 4),
                   util::fmt((sum_dream / sum_none - 1.0) * 100.0, 1),
                   util::fmt((sum_ecc / sum_none - 1.0) * 100.0, 1)});
    table.print(std::cout);
    std::cout << '\n';
    (void)table.write_csv(std::string("energy_") + app->name() + ".csv");

    grand_none += sum_none;
    grand_dream += sum_dream;
    grand_ecc += sum_ecc;
  }

  const double dream_ovh = (grand_dream / grand_none - 1.0) * 100.0;
  const double ecc_ovh = (grand_ecc / grand_none - 1.0) * 100.0;
  util::Table headline("Sec. VI-B headline - average protection overhead");
  headline.set_header({"emt", "overhead_%", "paper_%"});
  headline.add_row({"dream", util::fmt(dream_ovh, 1), "34"});
  headline.add_row({"ecc_secded", util::fmt(ecc_ovh, 1), "55"});
  headline.add_row({"delta (DREAM saves)", util::fmt(ecc_ovh - dream_ovh, 1),
                    "21"});
  headline.print(std::cout);

  std::cout << "\nShape checks:\n";
  std::cout << "  DREAM overhead < ECC overhead: "
            << (dream_ovh < ecc_ovh ? "PASS" : "FAIL") << '\n';
  std::cout << "  DREAM saves ~21 points of overhead (>= 10): "
            << (ecc_ovh - dream_ovh >= 10.0 ? "PASS" : "FAIL") << '\n';
  return 0;
}
