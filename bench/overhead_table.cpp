// Reproduces the static overhead numbers: paper Formula 2 / Sec. V extra
// memory bits per word, and the Sec. VI-B codec area comparison (ECC
// encoder +28%, decoder +120% vs DREAM).

#include <iostream>

#include "ulpdream/core/factory.hpp"
#include "ulpdream/energy/area_model.hpp"
#include "ulpdream/energy/energy_model.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main() {
  util::Table bits("Formula 2 / Sec. V - extra bits per 16-bit data word");
  bits.set_header({"emt", "payload_bits", "safe_bits", "extra_bits",
                   "paper_extra_bits", "mem_area_overhead_%"});
  const char* paper_bits[] = {"0", "5", "6"};
  int i = 0;
  for (const core::EmtKind kind : core::all_emt_kinds()) {
    const auto emt = core::make_emt(kind);
    bits.add_row({emt->name(), std::to_string(emt->payload_bits()),
                  std::to_string(emt->safe_bits()),
                  std::to_string(emt->extra_bits()), paper_bits[i++],
                  util::fmt(energy::memory_area_overhead(kind) * 100.0, 1)});
  }
  bits.print(std::cout);
  std::cout << '\n';

  util::Table area("Sec. VI-B - codec area (gate equivalents)");
  area.set_header({"emt", "encoder_GE", "decoder_GE", "enc_vs_dream",
                   "dec_vs_dream"});
  const energy::CodecArea dream = energy::codec_area(core::EmtKind::kDream);
  for (const core::EmtKind kind :
       {core::EmtKind::kDream, core::EmtKind::kEccSecDed}) {
    const energy::CodecArea a = energy::codec_area(kind);
    // Built via append rather than `"+" + fmt(...) + "%"`: the temporary
    // chain trips GCC 12's -Wrestrict false positive (GCC PR105651).
    std::string enc_vs_dream = "+";
    enc_vs_dream += util::fmt((a.encoder_ge / dream.encoder_ge - 1.0) * 100.0, 0);
    enc_vs_dream += "%";
    std::string dec_vs_dream = "+";
    dec_vs_dream += util::fmt((a.decoder_ge / dream.decoder_ge - 1.0) * 100.0, 0);
    dec_vs_dream += "%";
    area.add_row({core::emt_kind_name(kind), util::fmt(a.encoder_ge, 0),
                  util::fmt(a.decoder_ge, 0), enc_vs_dream, dec_vs_dream});
  }
  area.print(std::cout);
  std::cout << '\n';

  util::Table codec("Codec energy model (per operation)");
  codec.set_header({"emt", "encode_pJ", "decode_pJ"});
  for (const core::EmtKind kind : core::all_emt_kinds()) {
    const auto e = energy::codec_energy(kind);
    codec.add_row({core::emt_kind_name(kind), util::fmt(e.encode_pj, 2),
                   util::fmt(e.decode_pj, 2)});
  }
  codec.print(std::cout);

  std::cout << "\nShape checks:\n";
  const auto dream_bits = core::make_emt(core::EmtKind::kDream)->extra_bits();
  const auto ecc_bits =
      core::make_emt(core::EmtKind::kEccSecDed)->extra_bits();
  std::cout << "  DREAM 5 extra bits, ECC 6 (paper Sec. V): "
            << ((dream_bits == 5 && ecc_bits == 6) ? "PASS" : "FAIL") << '\n';
  const auto ecc_area = energy::codec_area(core::EmtKind::kEccSecDed);
  std::cout << "  ECC encoder +28% / decoder +120% vs DREAM: "
            << ((std::abs(ecc_area.encoder_ge / dream.encoder_ge - 1.28) <
                 0.01) &&
                        (std::abs(ecc_area.decoder_ge / dream.decoder_ge -
                                  2.20) < 0.01)
                    ? "PASS"
                    : "FAIL")
            << '\n';
  return 0;
}
