// Extension bench (paper conclusion: "For voltages < 0.55 V, EMTs for
// multiple errors correction must be used to guarantee a reliable medical
// output"): evaluates the DREAM+SEC/DED hybrid against the paper's three
// EMTs in the deep-voltage region 0.40-0.60 V, and shows that the
// heartbeat classifier's qualitative output survives deeper than waveform
// SNR suggests.

#include <iostream>

#include "ulpdream/apps/classifier_app.hpp"
#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/parallel_sweep.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sim::SweepConfig cfg;
  // Deep region, extended below the paper's 0.5 V floor.
  cfg.voltages = {0.40, 0.45, 0.50, 0.55, 0.60};
  cfg.runs = static_cast<std::size_t>(cli.get_int("runs", 60));
  cfg.emts = core::emt_names();
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 4242));

  const ecg::Record record = ecg::make_default_record(7);
  const apps::DwtApp dwt;

  const sim::ParallelSweepRunner runner =
      sim::ParallelSweepRunner::from_cli(cli);
  std::cerr << "[deep] sweeping DWT at deep voltages, " << cfg.runs
            << " runs/point on up to " << runner.threads() << " threads...\n";
  const sim::SweepResult res = runner.run(dwt, record, cfg);

  // Header follows the sweep's EMT list — emt_names() is open-ended, so
  // any technique registered into this binary gets its own column.
  std::vector<std::string> energy_header = {"V"};
  for (const std::string& emt : cfg.emts) energy_header.push_back(emt);

  util::Table table(
      "Deep-voltage extension - DWT mean SNR [dB] per EMT (hybrid = "
      "DREAM+SEC/DED, 11 extra bits)");
  table.set_header(energy_header);
  for (auto it = cfg.voltages.rbegin(); it != cfg.voltages.rend(); ++it) {
    std::vector<std::string> row = {util::fmt(*it, 2)};
    for (const std::string& emt : cfg.emts) {
      const sim::SweepPoint* p = res.find(emt, *it);
      row.push_back(p ? util::fmt(p->snr_mean_db, 1) : "-");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << '\n';
  (void)table.write_csv("deep_voltage.csv");

  util::Table energy("Deep-voltage energy per run [uJ]");
  energy.set_header(energy_header);
  for (auto it = cfg.voltages.rbegin(); it != cfg.voltages.rend(); ++it) {
    std::vector<std::string> row = {util::fmt(*it, 2)};
    for (const std::string& emt : cfg.emts) {
      const sim::SweepPoint* p = res.find(emt, *it);
      row.push_back(p ? util::fmt(p->energy_mean_j * 1e6, 4) : "-");
    }
    energy.add_row(row);
  }
  energy.print(std::cout);

  // Qualitative-output robustness: classifier class-count agreement under
  // DREAM at 0.55 V vs the waveform SNR at the same point.
  const apps::ClassifierApp classifier;
  auto agreement = [&](double v, const std::string& emt_name) {
    const auto ber = mem::make_ber_model(cfg.ber_model);
    util::Xoshiro256 rng(cfg.seed + 1);
    const auto none = core::make_emt("none");
    core::MemorySystem clean_sys(*none);
    const auto clean = classifier.run(clean_sys, record);
    const auto emt = core::make_emt(emt_name);
    std::size_t agree = 0;
    for (std::size_t t = 0; t < cfg.runs; ++t) {
      const mem::FaultMap map = mem::FaultMap::random(
          mem::MemoryGeometry::kWords16, 22, ber->ber(v), rng);
      core::MemorySystem sys(*emt);
      sys.attach_faults(&map);
      const auto noisy = classifier.run(sys, record);
      if (noisy[0] == clean[0] && noisy[1] == clean[1]) ++agree;
    }
    return static_cast<double>(agree) / static_cast<double>(cfg.runs);
  };

  util::Table qual("Qualitative output - classifier class-count agreement");
  qual.set_header({"V", "dream_agreement_%", "dream_secded_agreement_%"});
  for (const double v : {0.60, 0.55, 0.50}) {
    qual.add_row({util::fmt(v, 2),
                  util::fmt(agreement(v, "dream") * 100.0, 0),
                  util::fmt(
                      agreement(v, "dream_secded") * 100.0, 0)});
  }
  qual.print(std::cout);

  const double hybrid_050 =
      res.find("dream_secded", 0.50)->snr_mean_db;
  const double dream_050 = res.find("dream", 0.50)->snr_mean_db;
  const double ecc_050 =
      res.find("ecc_secded", 0.50)->snr_mean_db;
  std::cout << "\nShape checks:\n";
  std::cout << "  hybrid beats DREAM at 0.50 V: "
            << (hybrid_050 > dream_050 ? "PASS" : "FAIL") << '\n';
  std::cout << "  hybrid beats ECC at 0.50 V: "
            << (hybrid_050 > ecc_050 ? "PASS" : "FAIL") << '\n';
  return 0;
}
