// Distributed-runtime microbenchmark: the coordinator-side costs that
// bound a campaign's scale-out — frame round-trip latency/throughput on
// the wire protocol (a socketpair, so the numbers are protocol + kernel,
// no network), shard-sized LeaseResult ingest bandwidth, and LeaseTable
// grant/complete/expiry churn. Self-timed, no external benchmark
// dependency; emits machine-readable JSON (stdout, or --json FILE with a
// human summary on stderr) — the CI artifact BENCH_dist.json.
//
//   dist_bench --json BENCH_dist.json
//   dist_bench --frames 20000 --payload 65536     # one custom point

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ulpdream/dist/lease_table.hpp"
#include "ulpdream/dist/protocol.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/socket.hpp"

using namespace ulpdream;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WireTimings {
  std::size_t frames = 0;
  std::size_t payload_bytes = 0;
  double seconds = 0.0;

  [[nodiscard]] double frames_per_s() const {
    return seconds > 0 ? static_cast<double>(frames) / seconds : 0.0;
  }
  [[nodiscard]] double mib_per_s() const {
    return seconds > 0 ? static_cast<double>(frames) *
                             static_cast<double>(payload_bytes) /
                             (seconds * 1024.0 * 1024.0)
                       : 0.0;
  }
};

/// LeaseResult -> ResultAck ping-pong: the exact exchange a worker's
/// shard upload makes, echo thread playing coordinator.
WireTimings bench_wire(std::size_t frames, std::size_t payload_bytes) {
  auto [worker, coordinator] = util::Socket::socketpair("dist-bench");
  std::thread echo([&coordinator = coordinator, frames] {
    util::Frame frame;
    for (std::size_t i = 0; i < frames; ++i) {
      if (!dist::receive(coordinator, frame)) return;
      const dist::LeaseResult result =
          dist::decode_lease_result(frame, coordinator.peer());
      send(coordinator, dist::ResultAck{result.lease_id});
    }
  });

  const std::vector<std::uint8_t> payload(payload_bytes, 0xa5);
  WireTimings t;
  t.frames = frames;
  t.payload_bytes = payload_bytes;
  const auto start = Clock::now();
  util::Frame frame;
  for (std::size_t i = 0; i < frames; ++i) {
    send(worker, dist::LeaseResult{i, payload});
    if (!dist::receive(worker, frame)) break;
    (void)dist::decode_result_ack(frame, worker.peer());
  }
  t.seconds = seconds_since(start);
  echo.join();
  return t;
}

struct TableTimings {
  std::size_t leases = 0;
  double grant_complete_s = 0.0;
  double churn_s = 0.0;  ///< grant + expire + re-grant + complete

  [[nodiscard]] double leases_per_s() const {
    return grant_complete_s > 0
               ? static_cast<double>(leases) / grant_complete_s
               : 0.0;
  }
  [[nodiscard]] double churn_leases_per_s() const {
    return churn_s > 0 ? static_cast<double>(leases) / churn_s : 0.0;
  }
};

TableTimings bench_table(std::size_t items, std::size_t lease_items) {
  TableTimings t;
  t.leases = (items + lease_items - 1) / lease_items;
  const auto now = dist::LeaseTable::Clock::now();

  {
    dist::LeaseTable table(items, lease_items, std::chrono::seconds(60));
    dist::LeaseTable::Lease lease;
    const auto start = Clock::now();
    while (table.grant("bench", now, lease)) table.complete(lease.id);
    t.grant_complete_s = seconds_since(start);
    if (!table.all_done()) {
      std::fprintf(stderr, "bench_table: grant/complete did not drain\n");
      std::exit(1);
    }
  }

  {
    // Worst-case churn: every lease expires once before its re-grant
    // completes — the recovery path after a mass worker death.
    dist::LeaseTable table(items, lease_items,
                           std::chrono::milliseconds(1));
    dist::LeaseTable::Lease lease;
    const auto late = now + std::chrono::seconds(1);
    const auto start = Clock::now();
    while (table.grant("bench", now, lease)) {
      (void)table.expire_due(late);
      dist::LeaseTable::Lease again;
      if (!table.grant("bench", late, again)) break;
      table.complete(again.id);
    }
    t.churn_s = seconds_since(start);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto frames =
      static_cast<std::size_t>(cli.get_int("frames", 5'000));
  const auto items = static_cast<std::size_t>(
      cli.get_int("items", 1'000'000));
  const auto lease_items =
      static_cast<std::size_t>(cli.get_int("lease-items", 256));

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"dist\",\n  \"wire\": [\n";
  const std::size_t payloads[] = {64, 4096, 65'536, 1'048'576};
  bool first = true;
  for (const std::size_t payload : payloads) {
    // Big payloads get fewer frames so the bench stays sub-second.
    const std::size_t n =
        payload >= 1'048'576 ? std::max<std::size_t>(frames / 50, 10)
        : payload >= 65'536  ? std::max<std::size_t>(frames / 5, 50)
                             : frames;
    const WireTimings t = bench_wire(n, payload);
    json << (first ? "" : ",\n") << "    {\"payload_bytes\": " << payload
         << ", \"frames\": " << t.frames << ", \"seconds\": " << t.seconds
         << ", \"frames_per_s\": " << t.frames_per_s()
         << ", \"mib_per_s\": " << t.mib_per_s() << "}";
    first = false;
    std::fprintf(stderr,
                 "wire   payload=%8zu B  %9.0f frames/s  %8.1f MiB/s\n",
                 payload, t.frames_per_s(), t.mib_per_s());
  }
  const TableTimings table = bench_table(items, lease_items);
  json << "\n  ],\n  \"lease_table\": {\"items\": " << items
       << ", \"lease_items\": " << lease_items
       << ", \"leases\": " << table.leases
       << ", \"grant_complete_leases_per_s\": " << table.leases_per_s()
       << ", \"expiry_churn_leases_per_s\": " << table.churn_leases_per_s()
       << "}\n}\n";
  std::fprintf(stderr,
               "table  %zu items / %zu per lease: %9.0f leases/s clean, "
               "%9.0f leases/s with expiry churn\n",
               items, lease_items, table.leases_per_s(),
               table.churn_leases_per_s());

  const std::string json_path = cli.get("json", "");
  if (json_path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream os(json_path);
    os << json.str();
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
