// Reproduces Fig. 2: output SNR vs the data-bit position of an injected
// permanent error (stuck-at-0 and stuck-at-1), for all five biomedical
// applications, averaged over records with different pathologies.
//
// Expected shape (paper Sec. III):
//  - SNR decreases continuously as the stuck bit moves toward the MSB;
//  - Matrix Filtering sits clearly below the other applications (each
//    output element depends on a full row+column, so one error fans out);
//  - stuck-at-1 is milder than stuck-at-0 on MSB positions because most
//    samples are negative;
//  - CS tolerates stuck faults up to around bit 10 (s-a-0) / 12 (s-a-1)
//    relative to its quality requirement.

#include <iostream>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/sim/bit_significance.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  ecg::DatabaseConfig db_cfg;
  db_cfg.records_per_pathology =
      static_cast<std::size_t>(cli.get_int("records-per-pathology", 1));
  db_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::vector<ecg::Record> records = ecg::make_database(db_cfg);

  sim::ExperimentRunner runner;
  std::vector<sim::BitSignificanceResult> results;
  for (const std::string& name : apps::paper_app_names()) {
    const auto app = apps::make_app(name);
    std::cerr << "[fig2] characterizing " << app->name() << "...\n";
    results.push_back(sim::run_bit_significance(runner, *app, records));
  }

  for (int polarity = 0; polarity < 2; ++polarity) {
    util::Table table(std::string("Fig. 2 - SNR [dB] vs stuck-at-") +
                      (polarity ? "1" : "0") + " bit position (" +
                      std::to_string(records.size()) + " records)");
    std::vector<std::string> header = {"bit"};
    for (const auto& r : results) {
      header.push_back(r.app);
    }
    table.set_header(header);
    for (int bit = 0; bit < 16; ++bit) {
      std::vector<std::string> row = {std::to_string(bit)};
      for (const auto& r : results) {
        row.push_back(util::fmt(
            r.snr_db[static_cast<std::size_t>(polarity)]
                    [static_cast<std::size_t>(bit)],
            1));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << '\n';
    (void)table.write_csv("fig2_stuck_at_" + std::to_string(polarity) +
                          ".csv");
  }

  util::Table summary("Fig. 2 summary - max SNR and tolerated bit range");
  summary.set_header({"app", "max_snr_db", "tolerated_up_to_sa0",
                      "tolerated_up_to_sa1"});
  for (const auto& r : results) {
    summary.add_row({r.app, util::fmt(r.max_snr_db, 1),
                     std::to_string(r.tolerated_up_to[0]),
                     std::to_string(r.tolerated_up_to[1])});
  }
  summary.print(std::cout);

  // Shape checks the paper calls out, reported as PASS/FAIL lines.
  const auto* dwt = &results[0];
  const auto* matrix = &results[1];
  const auto* cs = &results[2];
  std::cout << "\nShape checks:\n";
  // "The gap between the SNR curve of the Matrix Filtering and the other
  // curves stems from ... a single error affects many positions."
  // The iterated-transform amplification makes the matrix curve fall
  // earlier: compare the polarity-averaged SNR on the high mid-bits where
  // the fan-out dominates.
  double matrix_mid = 0.0;
  double dwt_mid = 0.0;
  for (int bit = 11; bit <= 13; ++bit) {
    for (int pol = 0; pol < 2; ++pol) {
      matrix_mid += matrix->snr_db[static_cast<std::size_t>(pol)]
                                  [static_cast<std::size_t>(bit)];
      dwt_mid += dwt->snr_db[static_cast<std::size_t>(pol)]
                            [static_cast<std::size_t>(bit)];
    }
  }
  std::cout << "  matrix_filter below dwt on high mid bits (error fan-out): "
            << (matrix_mid < dwt_mid ? "PASS" : "FAIL") << '\n';
  int monotone_ok = 0;
  for (const auto& r : results) {
    if (r.snr_db[0][1] > r.snr_db[0][14]) ++monotone_ok;
  }
  std::cout << "  SNR decreases toward MSB (all apps, s-a-0): "
            << (monotone_ok == static_cast<int>(results.size()) ? "PASS"
                                                                : "FAIL")
            << '\n';
  // "erroneous bits set to 1 on MSB positions have a smaller impact than
  // erroneous bits set to 0" (negative-dominated buffers). The paper
  // observes this for Matrix Filtering and CS; in our reproduction it is
  // clearest for CS — the matrix app's mixed-sign Q2.14 coefficient words
  // dilute it (see EXPERIMENTS.md).
  const bool asym_ok = cs->snr_db[1][14] >= cs->snr_db[0][14] &&
                       cs->snr_db[1][15] >= cs->snr_db[0][15];
  std::cout << "  stuck-at-1 milder than stuck-at-0 on MSBs (cs): "
            << (asym_ok ? "PASS" : "FAIL") << '\n';
  (void)matrix;
  return 0;
}
