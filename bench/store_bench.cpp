// Raw-store persistence benchmark and out-of-core smoke driver.
//
// Default mode times save / load / merge / aggregate throughput of the
// two raw-store formats (text vs columnar) on synthetic stores and emits
// machine-readable JSON (stdout, or --json FILE with a human summary on
// stderr) — the CI artifact BENCH_store.json. Self-timed, no external
// benchmark dependency, same shape as micro_codec --datapath.
//
//   store_bench --json BENCH_store.json            # 10^4 and 10^6 items
//   store_bench --items 200000 --per-item 4        # one custom size
//
// Tool modes (the CI large-store smoke is scripted from these; all share
// the synthetic spec of --items/--per-item/--seed):
//
//   # write N strided shard stores of a spec (items i with i%N == s):
//   store_bench --make-shards DIR --shards 4 --format columnar
//   # fold columnar shards by append (out-of-core, bounded memory):
//   store_bench --append-merge OUT --inputs a.col,b.col,...
//   # fold any shards in memory (text/columnar mix), save in --format:
//   store_bench --merge OUT --inputs a.store,b.col,...
//   # aggregate a store to CSV; --mode streaming never materializes and
//   # holds only an LRU chunk cache — it runs under an RSS cap the
//   # materializing mode cannot meet (peak RSS reported on stderr):
//   store_bench --aggregate PATH --mode streaming|materialize --csv OUT

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "ulpdream/campaign/result_store.hpp"
#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/campaign/store_reader.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak resident set in bytes (0 where getrusage is unavailable).
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Synthetic campaign: `items` = repetitions of a 1-record, 1-voltage
/// grid; `per_item` = app count x 1 EMT. Axis names never resolve against
/// the registries because nothing here executes.
campaign::CampaignSpec synthetic_spec(std::size_t items,
                                      std::size_t per_item,
                                      std::uint64_t seed) {
  campaign::CampaignSpec spec;
  for (std::size_t a = 0; a < per_item; ++a) {
    spec.apps.push_back("app" + std::to_string(a));
  }
  spec.emts = {"none"};
  spec.voltages = {0.6};
  spec.records = {campaign::RecordAxis{ecg::Pathology::kNormalSinus, 1.0, 7}};
  spec.repetitions = items;
  spec.seed = seed;
  return spec.normalized();
}

/// Deterministic synthetic sample — pure integer mixing, so every
/// process (shard writers, both aggregate legs) derives the same bytes.
campaign::Sample synthetic_sample(std::size_t item, std::size_t k,
                                  std::uint64_t seed) {
  const auto mix = [](std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  };
  const std::uint64_t h = mix(seed ^ mix(item * 11400714819323198485ULL + k));
  const auto unit = [&](unsigned shift) {
    return static_cast<double>((h >> shift) & 0xFFFFF) / 1048576.0;
  };
  campaign::Sample s;
  s.snr_db = 40.0 * unit(0) - 10.0;
  s.energy.data_dynamic_j = 1e-6 * unit(4);
  s.energy.side_dynamic_j = 1e-6 * unit(8);
  s.energy.codec_j = 1e-7 * unit(12);
  s.energy.data_leak_j = 1e-7 * unit(16);
  s.energy.side_leak_j = 1e-7 * unit(20);
  s.corrected_words = static_cast<double>((h >> 24) & 0xFF);
  s.detected_uncorrectable = static_cast<double>((h >> 32) & 0x3);
  return s;
}

/// Fills `store` with the synthetic samples of every item i in
/// [0, items) with i % stride == phase (stride 1 = the whole grid).
void fill_store(campaign::ResultStore& store, std::size_t items,
                std::size_t stride, std::size_t phase) {
  const campaign::CampaignSpec& spec = store.spec();
  const std::size_t per_item = spec.apps.size() * spec.emts.size();
  std::vector<campaign::Sample> samples(per_item);
  for (std::size_t i = phase; i < items; i += stride) {
    for (std::size_t k = 0; k < per_item; ++k) {
      samples[k] = synthetic_sample(i, k, spec.seed);
    }
    campaign::WorkItem item;
    item.index = i;
    store.record_item(item, samples);
  }
  for (std::size_t a = 0; a < spec.apps.size(); ++a) {
    store.set_max_snr(0, a, 42.0 + static_cast<double>(a));
  }
}

std::uint64_t file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is ? static_cast<std::uint64_t>(is.tellg()) : 0;
}

// ---------------------------------------------------------------------------
// Benchmark mode.

struct FormatTimings {
  double save_s = 0;
  double load_s = 0;
  double aggregate_s = 0;
  double merge_s = 0;
  std::uint64_t bytes = 0;
};

/// Times one format at one size. Files land in --dir (default /tmp).
FormatTimings time_format(const campaign::CampaignSpec& spec,
                          const campaign::ResultStore& full,
                          const std::vector<campaign::ResultStore>& shards,
                          campaign::StoreFormat format,
                          const std::string& dir) {
  namespace c = campaign;
  FormatTimings t;
  const std::string ext = format == c::StoreFormat::kText ? ".store" : ".col";
  const std::string path = dir + "/store_bench" + ext;

  Clock::time_point start = Clock::now();
  c::save_store(full, path, format);
  t.save_s = seconds_since(start);
  t.bytes = file_bytes(path);

  start = Clock::now();
  const auto reader = c::StoreReader::open(path, spec);
  t.load_s = seconds_since(start);

  start = Clock::now();
  const auto rows = reader.aggregate();
  t.aggregate_s = seconds_since(start);
  if (rows.empty()) std::fprintf(stderr, "store_bench: empty aggregate?\n");

  // Merge: shards saved up front (not timed), then folded — by append
  // for columnar, by load+merge for text.
  std::vector<std::string> shard_paths;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shard_paths.push_back(dir + "/store_bench_shard" + std::to_string(s) +
                          ext);
    c::save_store(shards[s], shard_paths.back(), format);
  }
  const std::string merged_path = dir + "/store_bench_merged" + ext;
  start = Clock::now();
  if (format == c::StoreFormat::kColumnar) {
    c::ColumnarStore::append_merge(shard_paths, merged_path, spec);
  } else {
    c::ResultStore merged(spec);
    for (const std::string& p : shard_paths) {
      merged.merge(c::StoreReader::open(p, spec).materialize());
    }
    merged.save_atomic(merged_path);
  }
  t.merge_s = seconds_since(start);

  std::remove(path.c_str());
  std::remove(merged_path.c_str());
  for (const std::string& p : shard_paths) std::remove(p.c_str());
  return t;
}

void json_format(std::ostream& os, const char* name, const FormatTimings& t,
                 bool last) {
  os << "    \"" << name << "\": {\n"
     << "      \"file_bytes\": " << t.bytes << ",\n"
     << "      \"save_s\": " << util::fmt_exact(t.save_s) << ",\n"
     << "      \"load_s\": " << util::fmt_exact(t.load_s) << ",\n"
     << "      \"aggregate_s\": " << util::fmt_exact(t.aggregate_s) << ",\n"
     << "      \"merge_s\": " << util::fmt_exact(t.merge_s) << "\n"
     << "    }" << (last ? "\n" : ",\n");
}

int run_bench(const util::Cli& cli) {
  const std::string dir = cli.get("dir", "/tmp");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2016));
  const std::size_t shard_count = 4;

  std::vector<std::pair<std::size_t, std::size_t>> sizes;  // (items, per_item)
  if (const auto items = cli.get_int("items", 0); items > 0) {
    sizes.emplace_back(static_cast<std::size_t>(items),
                       static_cast<std::size_t>(cli.get_int("per-item", 2)));
  } else {
    sizes.emplace_back(10000, 4);
    sizes.emplace_back(1000000, 2);
  }

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"store\",\n  \"sizes\": [\n";
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const auto [items, per_item] = sizes[si];
    const campaign::CampaignSpec spec =
        synthetic_spec(items, per_item, seed);
    campaign::ResultStore full(spec);
    fill_store(full, items, 1, 0);
    std::vector<campaign::ResultStore> shards;
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards.emplace_back(spec);
      fill_store(shards.back(), items, shard_count, s);
    }

    const FormatTimings text =
        time_format(spec, full, shards, campaign::StoreFormat::kText, dir);
    const FormatTimings col = time_format(
        spec, full, shards, campaign::StoreFormat::kColumnar, dir);

    json << "  {\n    \"items\": " << items
         << ",\n    \"per_item\": " << per_item << ",\n";
    json_format(json, "text", text, false);
    json_format(json, "columnar", col, false);
    json << "    \"load_speedup\": "
         << util::fmt_exact(col.load_s > 0 ? text.load_s / col.load_s : 0)
         << ",\n    \"merge_speedup\": "
         << util::fmt_exact(col.merge_s > 0 ? text.merge_s / col.merge_s : 0)
         << "\n  }" << (si + 1 == sizes.size() ? "\n" : ",\n");

    std::fprintf(stderr,
                 "store %8zu items x %zu: text save %.3fs load %.3fs "
                 "merge %.3fs agg %.3fs (%.1f MB) | columnar save %.3fs "
                 "load %.3fs merge %.3fs agg %.3fs (%.1f MB) | load x%.1f\n",
                 items, per_item, text.save_s, text.load_s, text.merge_s,
                 text.aggregate_s, static_cast<double>(text.bytes) / 1e6,
                 col.save_s, col.load_s, col.merge_s, col.aggregate_s,
                 static_cast<double>(col.bytes) / 1e6,
                 col.load_s > 0 ? text.load_s / col.load_s : 0.0);
  }
  json << "  ],\n  \"peak_rss_bytes\": " << peak_rss_bytes() << "\n}\n";

  const std::string json_path = cli.get("json", "");
  if (json_path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream os(json_path);
    os << json.str();
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Tool modes (CI smoke building blocks).

int run_make_shards(const util::Cli& cli, const campaign::CampaignSpec& spec,
                    std::size_t items) {
  const std::string dir = cli.get("make-shards", "");
  const auto shards =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("shards", 4)));
  const campaign::StoreFormat format =
      campaign::parse_store_format(cli.get("format", "columnar"));
  const std::string ext =
      format == campaign::StoreFormat::kText ? ".store" : ".col";
  for (std::size_t s = 0; s < shards; ++s) {
    campaign::ResultStore store(spec);
    fill_store(store, items, shards, s);
    const std::string path = dir + "/shard" + std::to_string(s) + ext;
    campaign::save_store(store, path, format);
    std::fprintf(stderr, "wrote %s (%zu items, %llu bytes)\n", path.c_str(),
                 store.items_done(),
                 static_cast<unsigned long long>(file_bytes(path)));
  }
  return 0;
}

int run_append_merge(const util::Cli& cli,
                     const campaign::CampaignSpec& spec) {
  const std::string out = cli.get("append-merge", "");
  const auto inputs = util::split_list(cli.get("inputs", ""));
  if (inputs.empty()) {
    std::fprintf(stderr, "--append-merge requires --inputs a,b,...\n");
    return 1;
  }
  const Clock::time_point start = Clock::now();
  campaign::ColumnarStore::append_merge(inputs, out, spec);
  std::fprintf(stderr,
               "appended %zu shards into %s (%llu bytes) in %.3fs, "
               "peak rss %.1f MB\n",
               inputs.size(), out.c_str(),
               static_cast<unsigned long long>(file_bytes(out)),
               seconds_since(start),
               static_cast<double>(peak_rss_bytes()) / 1e6);
  return 0;
}

int run_merge(const util::Cli& cli, const campaign::CampaignSpec& spec) {
  const std::string out = cli.get("merge", "");
  const auto inputs = util::split_list(cli.get("inputs", ""));
  if (inputs.empty()) {
    std::fprintf(stderr, "--merge requires --inputs a,b,...\n");
    return 1;
  }
  const campaign::StoreFormat format =
      campaign::parse_store_format(cli.get("format", "text"));
  campaign::ResultStore merged(spec);
  for (const std::string& p : inputs) {
    merged.merge(campaign::StoreReader::open(p, spec).materialize());
  }
  campaign::save_store(merged, out, format);
  std::fprintf(stderr, "merged %zu shards into %s (%s)\n", inputs.size(),
               out.c_str(), campaign::to_string(format));
  return 0;
}

int run_aggregate(const util::Cli& cli, const campaign::CampaignSpec& spec) {
  const std::string path = cli.get("aggregate", "");
  const std::string mode = cli.get("mode", "streaming");
  const std::string csv = cli.get("csv", "");

  std::vector<campaign::AggregateRow> rows;
  const Clock::time_point start = Clock::now();
  if (mode == "streaming") {
    // Bounded-memory leg: everything (index included) streams through an
    // LRU chunk cache; neither a mapping nor a heap buffer of the file
    // ever exists, so peak memory is independent of the store size.
    campaign::ColumnarStore::OpenOptions options;
    options.bounded_memory = true;
    const auto store = campaign::ColumnarStore::open(path, spec, options);
    rows = store.aggregate();
  } else if (mode == "materialize") {
    // In-memory leg: parse/copy the whole store onto the heap first —
    // the path whose footprint scales with the store and busts RSS caps.
    const auto store =
        campaign::StoreReader::open(path, spec).materialize();
    rows = store.aggregate();
  } else {
    std::fprintf(stderr, "--mode streaming|materialize (got %s)\n",
                 mode.c_str());
    return 1;
  }
  const double elapsed = seconds_since(start);

  if (!csv.empty()) {
    std::ofstream os(csv);
    campaign::write_rows_csv(os, rows);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", csv.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "aggregated %s (%s) in %.3fs: %zu rows, peak rss %.1f MB\n",
               path.c_str(), mode.c_str(), elapsed, rows.size(),
               static_cast<double>(peak_rss_bytes()) / 1e6);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const auto items = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("items", 1000000)));
    const auto per_item =
        static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("per-item", 2)));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2016));
    const campaign::CampaignSpec spec =
        synthetic_spec(items, per_item, seed);

    if (!cli.get("make-shards", "").empty()) {
      return run_make_shards(cli, spec, items);
    }
    if (!cli.get("append-merge", "").empty()) {
      return run_append_merge(cli, spec);
    }
    if (!cli.get("merge", "").empty()) return run_merge(cli, spec);
    if (!cli.get("aggregate", "").empty()) return run_aggregate(cli, spec);
    return run_bench(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "store_bench: %s\n", e.what());
    return 1;
  }
}
