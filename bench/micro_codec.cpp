// Engineering microbenchmarks (not paper artifacts), two modes:
//
//  - default: google-benchmark throughput of the EMT codecs, the
//    faulty-memory access path and the main DSP kernels (built only when
//    the library is available; used to size experiment runtimes);
//  - --datapath: self-timed scalar-vs-block data-path comparison on the
//    paper's 32 kB geometry — full-buffer write+read sweeps through
//    ProtectedBuffer, word-at-a-time vs the span-based block API, for
//    every EMT at a chosen supply voltage. Verifies the two paths are
//    bit-identical (decoded words, CodecCounters, AccessStats) and emits
//    machine-readable JSON (stdout, or --json FILE with a human summary
//    on stdout). CI runs this as the perf-trajectory smoke step.
//
//    Example: micro_codec --datapath --volt 0.8 --json BENCH_datapath.json

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "ulpdream/core/dream.hpp"
#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/core/factory.hpp"
#include "ulpdream/core/no_protection.hpp"
#include "ulpdream/core/protected_buffer.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/mem/ber_model.hpp"
#include "ulpdream/mem/fault_map.hpp"
#include "ulpdream/util/bench.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/rng.hpp"
#include "ulpdream/util/simd.hpp"
#include "ulpdream/util/telemetry.hpp"

#ifdef ULPDREAM_HAVE_GBENCH
#include <benchmark/benchmark.h>

#include "ulpdream/cs/omp.hpp"
#include "ulpdream/cs/sensing_matrix.hpp"
#include "ulpdream/signal/morphology.hpp"
#include "ulpdream/signal/wavelet.hpp"
#endif

using namespace ulpdream;

namespace {

// ---------------------------------------------------------------------------
// --datapath mode.

constexpr std::uint64_t kScramblerSeed = 0xDA7A9A7Bu;

struct DatapathRow {
  std::string emt;
  double scalar_maccess_s = 0.0;
  double block_maccess_s = 0.0;
  double speedup = 0.0;
  bool identical = false;
  std::uint64_t scalar_checksum = 0;  ///< per-pass decoded-output sum
  std::uint64_t block_checksum = 0;   ///< must equal scalar_checksum
};

/// One full write+read sweep of `src` through `buf`, word at a time.
std::uint64_t scalar_pass(core::ProtectedBuffer& buf,
                          const fixed::SampleVec& src) {
  for (std::size_t i = 0; i < src.size(); ++i) buf.set(i, src[i]);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    sum += static_cast<std::uint16_t>(buf.get(i));
  }
  return sum;
}

/// The same sweep on the block path.
std::uint64_t block_pass(core::ProtectedBuffer& buf,
                         const fixed::SampleVec& src, fixed::SampleVec& dst) {
  buf.load(0, std::span<const fixed::Sample>(src.data(), src.size()));
  buf.store(0, std::span<fixed::Sample>(dst.data(), dst.size()));
  std::uint64_t sum = 0;
  for (const fixed::Sample s : dst) sum += static_cast<std::uint16_t>(s);
  return sum;
}

bool stats_equal(const mem::AccessStats& a, const mem::AccessStats& b) {
  return a.reads == b.reads && a.writes == b.writes &&
         a.bank_reads == b.bank_reads && a.bank_writes == b.bank_writes;
}

/// Bit-identity check: scalar and block sweeps over identical systems must
/// produce the same decoded words, codec counters and access stats.
bool paths_identical(const core::Emt& emt, const mem::FaultMap& map,
                     const fixed::SampleVec& src) {
  fixed::SampleVec scalar_out(src.size());
  fixed::SampleVec block_out(src.size());
  core::CodecCounters scalar_counters;
  core::CodecCounters block_counters;
  mem::AccessStats scalar_data;
  mem::AccessStats block_data;
  mem::AccessStats scalar_side;
  mem::AccessStats block_side;

  {
    core::MemorySystem system(emt, src.size());
    system.attach_faults(&map);
    system.set_scrambler(kScramblerSeed);
    auto buf = core::ProtectedBuffer::allocate(system, src.size());
    for (std::size_t i = 0; i < src.size(); ++i) buf.set(i, src[i]);
    for (std::size_t i = 0; i < src.size(); ++i) scalar_out[i] = buf.get(i);
    scalar_counters = system.counters();
    scalar_data = system.data().stats();
    if (const auto* side = system.safe()) scalar_side = side->stats();
  }
  {
    core::MemorySystem system(emt, src.size());
    system.attach_faults(&map);
    system.set_scrambler(kScramblerSeed);
    auto buf = core::ProtectedBuffer::allocate(system, src.size());
    buf.load(0, std::span<const fixed::Sample>(src.data(), src.size()));
    buf.store(0, std::span<fixed::Sample>(block_out.data(), block_out.size()));
    block_counters = system.counters();
    block_data = system.data().stats();
    if (const auto* side = system.safe()) block_side = side->stats();
  }
  return scalar_out == block_out &&
         scalar_counters.decodes == block_counters.decodes &&
         scalar_counters.corrected_words == block_counters.corrected_words &&
         scalar_counters.detected_uncorrectable ==
             block_counters.detected_uncorrectable &&
         stats_equal(scalar_data, block_data) &&
         stats_equal(scalar_side, block_side);
}

/// Median-free simple timing: repeats passes until `min_seconds` of work
/// is accumulated and reports accesses (reads + writes) per second.
/// `checksum` receives the (deterministic) per-pass output sum, and every
/// timed pass's result goes through an optimization barrier so no part of
/// the sweep can be dead-code-eliminated.
template <typename Pass>
double time_pass(Pass&& pass, std::size_t words, double min_seconds,
                 std::uint64_t& checksum) {
  using Clock = std::chrono::steady_clock;
  // Warm-up pass (touches every page, fills caches) — its sum is the
  // checksum the JSON reports; every timed pass must reproduce it.
  checksum = pass();
  std::uint64_t mismatches = 0;
  std::uint64_t reps = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    const std::uint64_t sum = pass();
    util::do_not_optimize(sum);
    mismatches += (sum != checksum);
    ++reps;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  if (mismatches != 0) {
    std::fprintf(stderr, "datapath: %llu non-deterministic passes\n",
                 static_cast<unsigned long long>(mismatches));
    checksum = 0;  // poison: the JSON consumer sees the divergence
  }
  const double accesses =
      static_cast<double>(reps) * 2.0 * static_cast<double>(words);
  return accesses / elapsed;
}

/// The benchmark's own telemetry, embedded so BENCH_datapath.json is
/// self-describing: per-EMT block-call latency histograms (recorded by
/// the instrumented MemorySystem under hot_timing) plus the SIMD tier.
void write_telemetry_block(std::ostream& os,
                           const util::telemetry::MetricsSnapshot& m) {
  os << "  \"telemetry\": {\n";
  os << "    \"simd_tier\": \""
     << util::simd::tier_name(util::simd::active_tier()) << "\",\n";
  os << "    \"codec_block_ns\": {";
  bool first = true;
  for (const auto& [name, h] : m.histograms) {
    // codec.<emt>.{encode,decode}_block_ns — sorted map, stable order.
    if (name.rfind("codec.", 0) != 0 || h.count() == 0) continue;
    os << (first ? "\n" : ",\n") << "      \"" << name
       << "\": {\"count\": " << h.count() << ", \"mean\": " << h.mean()
       << ", \"p50\": " << h.quantile(0.5) << ", \"p95\": " << h.quantile(0.95)
       << ", \"p99\": " << h.quantile(0.99) << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "}\n  },\n";
}

void write_json(std::ostream& os, double volt, double ber, std::size_t words,
                const std::vector<DatapathRow>& rows) {
  os << "{\n";
  os << "  \"benchmark\": \"datapath\",\n";
  os << "  \"geometry\": {\"words\": " << words
     << ", \"banks\": " << mem::MemoryGeometry::kBanks
     << ", \"bytes\": " << mem::MemoryGeometry::kBytes << "},\n";
  os << "  \"voltage_v\": " << volt << ",\n";
  os << "  \"ber\": " << ber << ",\n";
  os << "  \"accesses_per_pass\": " << 2 * words << ",\n";
  os << "  \"simd_tier\": \""
     << util::simd::tier_name(util::simd::active_tier()) << "\",\n";
  write_telemetry_block(os, util::telemetry::snapshot());
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DatapathRow& r = rows[i];
    os << "    {\"emt\": \"" << r.emt << "\", \"scalar_maccess_s\": "
       << r.scalar_maccess_s << ", \"block_maccess_s\": " << r.block_maccess_s
       << ", \"speedup\": " << r.speedup
       << ", \"identical\": " << (r.identical ? "true" : "false")
       << ", \"scalar_checksum\": " << r.scalar_checksum
       << ", \"block_checksum\": " << r.block_checksum << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

int run_datapath(const util::Cli& cli) {
  // The bench is a telemetry scraper: turn the gated block-latency
  // histograms on and start from zero so the embedded JSON block
  // describes exactly this run.
  util::telemetry::set_hot_timing(true);
  util::telemetry::reset_metrics();
  const double volt = cli.get_double("volt", 0.8);
  const double min_seconds = cli.get_double("min-time", 0.15);
  const std::size_t words = static_cast<std::size_t>(
      cli.get_int("words", static_cast<std::int64_t>(
                               mem::MemoryGeometry::kWords16)));
  const double ber = mem::LogLinearBerModel().ber(volt);

  // Realistic sample distribution (DREAM's run lengths depend on it):
  // a synthetic ECG trace tiled over the full array.
  const ecg::Record record = ecg::make_default_record(1);
  fixed::SampleVec src(words);
  for (std::size_t i = 0; i < words; ++i) {
    src[i] = record.samples[i % record.samples.size()];
  }

  // One fault map at the widest payload, shared by every EMT — the same
  // fairness protocol the experiments use.
  util::Xoshiro256 rng(2016);
  const mem::FaultMap map = mem::FaultMap::random(
      words, core::EccSecDed::kPayloadBits, ber, rng);

  std::vector<DatapathRow> rows;
  bool all_identical = true;
  for (const std::string& name : core::emt_names()) {
    const auto emt = core::make_emt(name);
    DatapathRow row;
    row.emt = emt->name();
    row.identical = paths_identical(*emt, map, src);
    all_identical = all_identical && row.identical;

    core::MemorySystem system(*emt, words);
    system.attach_faults(&map);
    system.set_scrambler(kScramblerSeed);
    auto buf = core::ProtectedBuffer::allocate(system, words);
    fixed::SampleVec dst(words);

    row.scalar_maccess_s =
        time_pass([&] { return scalar_pass(buf, src); }, words, min_seconds,
                  row.scalar_checksum) /
        1e6;
    row.block_maccess_s =
        time_pass([&] { return block_pass(buf, src, dst); }, words,
                  min_seconds, row.block_checksum) /
        1e6;
    row.speedup = row.block_maccess_s / row.scalar_maccess_s;
    // Both sweeps decode the same stored data, so the checksums must
    // agree — a cheap second witness alongside paths_identical().
    row.identical = row.identical && row.scalar_checksum == row.block_checksum;
    all_identical = all_identical && row.identical;
    rows.push_back(row);

    std::fprintf(stderr,
                 "datapath %-12s scalar %8.2f Macc/s  block %8.2f Macc/s  "
                 "speedup %.2fx  identical=%s  checksum=%llu\n",
                 row.emt.c_str(), row.scalar_maccess_s, row.block_maccess_s,
                 row.speedup, row.identical ? "yes" : "NO",
                 static_cast<unsigned long long>(row.block_checksum));
  }

  const std::string json_path = cli.get("json", "");
  if (json_path.empty()) {
    write_json(std::cout, volt, ber, words, rows);
  } else {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    write_json(os, volt, ber, words, rows);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: block path diverged from scalar path\n");
    return 1;
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// google-benchmark microbenchmarks (default mode).

#ifdef ULPDREAM_HAVE_GBENCH
namespace {

void BM_DreamEncode(benchmark::State& state) {
  const core::Dream dream;
  fixed::Sample s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dream.encode_safe(s));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_DreamEncode);

void BM_DreamDecode(benchmark::State& state) {
  const core::Dream dream;
  fixed::Sample s = 0;
  for (auto _ : state) {
    const std::uint16_t safe = dream.encode_safe(s);
    benchmark::DoNotOptimize(dream.decode(dream.encode_payload(s) ^ 0x8000u,
                                          safe));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_DreamDecode);

void BM_EccEncode(benchmark::State& state) {
  const core::EccSecDed ecc;
  fixed::Sample s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc.encode_payload(s));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_EccEncode);

void BM_EccDecodeWithError(benchmark::State& state) {
  const core::EccSecDed ecc;
  fixed::Sample s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc.decode(ecc.encode_payload(s) ^ 0x10u, 0));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_EccDecodeWithError);

void BM_ProtectedBufferAccess(benchmark::State& state) {
  const core::Dream dream;
  core::MemorySystem system(dream, 4096);
  util::Xoshiro256 rng(1);
  const mem::FaultMap map =
      mem::FaultMap::random(4096, 16, 1e-3, rng);
  system.attach_faults(&map);
  auto buf = core::ProtectedBuffer::allocate(system, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    buf.set(i, static_cast<fixed::Sample>(i));
    benchmark::DoNotOptimize(buf.get(i));
    i = (i + 1) % 4096;
  }
}
BENCHMARK(BM_ProtectedBufferAccess);

void BM_ProtectedBufferBlockAccess(benchmark::State& state) {
  const core::Dream dream;
  core::MemorySystem system(dream, 4096);
  util::Xoshiro256 rng(1);
  const mem::FaultMap map =
      mem::FaultMap::random(4096, 16, 1e-3, rng);
  system.attach_faults(&map);
  auto buf = core::ProtectedBuffer::allocate(system, 4096);
  fixed::SampleVec window(4096);
  for (std::size_t i = 0; i < window.size(); ++i) {
    window[i] = static_cast<fixed::Sample>(i);
  }
  for (auto _ : state) {
    buf.load(0, std::span<const fixed::Sample>(window.data(), window.size()));
    buf.store(0, std::span<fixed::Sample>(window.data(), window.size()));
    benchmark::DoNotOptimize(window.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * 4096);
}
BENCHMARK(BM_ProtectedBufferBlockAccess);

void BM_FaultMapGeneration(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  const double ber = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem::FaultMap::random(mem::MemoryGeometry::kWords16, 22, ber, rng));
  }
}
BENCHMARK(BM_FaultMapGeneration);

void BM_DwtMulti2048(benchmark::State& state) {
  const ecg::Record rec = ecg::make_default_record(1);
  signal::VecBuffer in(fixed::SampleVec(rec.samples.begin(),
                                        rec.samples.begin() + 2048));
  signal::VecBuffer out(2048);
  signal::VecBuffer scratch(2048);
  const signal::FixedBank bank =
      signal::fixed_bank(signal::WaveletFamily::kDb4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        signal::dwt_multi(in, 2048, bank, 4, out, scratch));
  }
}
BENCHMARK(BM_DwtMulti2048);

void BM_MorphologyOpen2048(benchmark::State& state) {
  const ecg::Record rec = ecg::make_default_record(1);
  signal::VecBuffer in(fixed::SampleVec(rec.samples.begin(),
                                        rec.samples.begin() + 2048));
  signal::VecBuffer tmp(2048);
  signal::VecBuffer out(2048);
  for (auto _ : state) {
    signal::open(in, tmp, out, 13, 2048);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MorphologyOpen2048);

void BM_OmpReconstruct(benchmark::State& state) {
  const linalg::Matrix a = cs::bernoulli_matrix(128, 256, 5);
  util::Xoshiro256 rng(3);
  std::vector<double> y(128);
  for (auto& v : y) v = rng.gaussian();
  cs::OmpConfig cfg;
  cfg.max_atoms = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs::omp_solve(a, y, cfg));
  }
}
BENCHMARK(BM_OmpReconstruct)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
#endif  // ULPDREAM_HAVE_GBENCH

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("datapath")) return run_datapath(cli);
#ifdef ULPDREAM_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "google-benchmark not available; run with --datapath for the "
               "scalar-vs-block data-path benchmark\n");
  return 1;
#endif
}
