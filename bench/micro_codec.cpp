// google-benchmark microbenchmarks: throughput of the EMT codecs, the
// faulty-memory access path and the main DSP kernels. Engineering numbers
// (not in the paper) used to size experiment runtimes.

#include <benchmark/benchmark.h>

#include "ulpdream/core/dream.hpp"
#include "ulpdream/core/ecc_secded.hpp"
#include "ulpdream/core/no_protection.hpp"
#include "ulpdream/core/protected_buffer.hpp"
#include "ulpdream/cs/omp.hpp"
#include "ulpdream/cs/sensing_matrix.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/mem/fault_map.hpp"
#include "ulpdream/signal/morphology.hpp"
#include "ulpdream/signal/wavelet.hpp"
#include "ulpdream/util/rng.hpp"

using namespace ulpdream;

namespace {

void BM_DreamEncode(benchmark::State& state) {
  const core::Dream dream;
  fixed::Sample s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dream.encode_safe(s));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_DreamEncode);

void BM_DreamDecode(benchmark::State& state) {
  const core::Dream dream;
  fixed::Sample s = 0;
  for (auto _ : state) {
    const std::uint16_t safe = dream.encode_safe(s);
    benchmark::DoNotOptimize(dream.decode(dream.encode_payload(s) ^ 0x8000u,
                                          safe));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_DreamDecode);

void BM_EccEncode(benchmark::State& state) {
  const core::EccSecDed ecc;
  fixed::Sample s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc.encode_payload(s));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_EccEncode);

void BM_EccDecodeWithError(benchmark::State& state) {
  const core::EccSecDed ecc;
  fixed::Sample s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc.decode(ecc.encode_payload(s) ^ 0x10u, 0));
    s = static_cast<fixed::Sample>(s + 7);
  }
}
BENCHMARK(BM_EccDecodeWithError);

void BM_ProtectedBufferAccess(benchmark::State& state) {
  const core::Dream dream;
  core::MemorySystem system(dream, 4096);
  util::Xoshiro256 rng(1);
  const mem::FaultMap map =
      mem::FaultMap::random(4096, 16, 1e-3, rng);
  system.attach_faults(&map);
  auto buf = core::ProtectedBuffer::allocate(system, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    buf.set(i, static_cast<fixed::Sample>(i));
    benchmark::DoNotOptimize(buf.get(i));
    i = (i + 1) % 4096;
  }
}
BENCHMARK(BM_ProtectedBufferAccess);

void BM_FaultMapGeneration(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  const double ber = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem::FaultMap::random(mem::MemoryGeometry::kWords16, 22, ber, rng));
  }
}
BENCHMARK(BM_FaultMapGeneration);

void BM_DwtMulti2048(benchmark::State& state) {
  const ecg::Record rec = ecg::make_default_record(1);
  signal::VecBuffer in(fixed::SampleVec(rec.samples.begin(),
                                        rec.samples.begin() + 2048));
  signal::VecBuffer out(2048);
  signal::VecBuffer scratch(2048);
  const signal::FixedBank bank =
      signal::fixed_bank(signal::WaveletFamily::kDb4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        signal::dwt_multi(in, 2048, bank, 4, out, scratch));
  }
}
BENCHMARK(BM_DwtMulti2048);

void BM_MorphologyOpen2048(benchmark::State& state) {
  const ecg::Record rec = ecg::make_default_record(1);
  signal::VecBuffer in(fixed::SampleVec(rec.samples.begin(),
                                        rec.samples.begin() + 2048));
  signal::VecBuffer tmp(2048);
  signal::VecBuffer out(2048);
  for (auto _ : state) {
    signal::open(in, tmp, out, 13, 2048);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MorphologyOpen2048);

void BM_OmpReconstruct(benchmark::State& state) {
  const linalg::Matrix a = cs::bernoulli_matrix(128, 256, 5);
  util::Xoshiro256 rng(3);
  std::vector<double> y(128);
  for (auto& v : y) v = rng.gaussian();
  cs::OmpConfig cfg;
  cfg.max_atoms = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs::omp_solve(a, y, cfg));
  }
}
BENCHMARK(BM_OmpReconstruct)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
