// Reproduces Fig. 4 (a, b, c): output SNR vs data-memory supply voltage
// for (a) no protection, (b) DREAM, (c) ECC SEC/DED, for all five
// applications. Paper protocol: 0.9 -> 0.5 V, 200 random fault maps per
// point, maps shared across EMTs, mean SNR reported; the dashed line is
// the error-free (quantization/lossy-limited) maximum SNR.

#include <iostream>

#include "ulpdream/apps/app.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/metrics/quality.hpp"
#include "ulpdream/sim/parallel_sweep.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sim::SweepConfig cfg = sim::SweepConfig::defaults();
  cfg.runs = static_cast<std::size_t>(cli.get_int("runs", 200));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2016));
  cfg.ber_model = cli.get("ber-model", "log-linear");

  const ecg::Record record = ecg::make_default_record(
      static_cast<std::uint64_t>(cli.get_int("record-seed", 7)));

  std::vector<std::unique_ptr<apps::BioApp>> owned;
  std::vector<const apps::BioApp*> app_list;
  for (const std::string& name : apps::paper_app_names()) {
    owned.push_back(apps::make_app(name));
    app_list.push_back(owned.back().get());
  }

  const sim::ParallelSweepRunner runner =
      sim::ParallelSweepRunner::from_cli(cli);
  std::cerr << "[fig4] sweeping " << cfg.voltages.size() << " voltages x "
            << cfg.runs << " runs x " << app_list.size() << " apps x "
            << cfg.emts.size() << " EMTs on up to " << runner.threads()
            << " threads...\n";
  const std::vector<sim::SweepResult> results =
      runner.run_multi(app_list, record, cfg);

  const char* panel_names[] = {"(a) No protection", "(b) DREAM",
                               "(c) ECC SEC/DED"};
  for (std::size_t ei = 0; ei < cfg.emts.size(); ++ei) {
    util::Table table(std::string("Fig. 4 ") + panel_names[ei] +
                      " - mean SNR [dB] vs supply voltage");
    std::vector<std::string> header = {"V"};
    for (const auto& r : results) {
      header.push_back(r.points.front().app);
    }
    table.set_header(header);
    for (auto v_it = cfg.voltages.rbegin(); v_it != cfg.voltages.rend();
         ++v_it) {
      std::vector<std::string> row = {util::fmt(*v_it, 2)};
      for (const auto& r : results) {
        const sim::SweepPoint* p = r.find(cfg.emts[ei], *v_it);
        row.push_back(p ? util::fmt(p->snr_mean_db, 1) : "-");
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << '\n';
    (void)table.write_csv(std::string("fig4_") + cfg.emts[ei] + ".csv");
  }

  util::Table dashed("Fig. 4 dashed lines - max SNR (error-free) [dB]");
  dashed.set_header({"app", "max_snr_db"});
  for (const auto& r : results) {
    dashed.add_row({r.points.front().app,
                    util::fmt(r.max_snr_db, 1)});
  }
  dashed.print(std::cout);

  // The paper's CS dashed line is vs the *original* signal ("CS is, by
  // construction, a lossy compression algorithm"): report that ceiling
  // separately. Ours is lower than the paper's ~85 dB because we
  // reconstruct a single lead with plain OMP instead of multi-lead joint
  // reconstruction (see EXPERIMENTS.md).
  {
    const auto& cs_app = *app_list[2];
    const auto ideal = cs_app.ideal_output(record);
    std::vector<double> original(cs_app.input_length());
    for (std::size_t i = 0; i < original.size(); ++i) {
      original[i] = static_cast<double>(record.samples[i]);
    }
    std::cout << "\nCS lossy-compression ceiling vs original signal: "
              << util::fmt(metrics::snr_db(original, *ideal), 1)
              << " dB (paper: ~85 dB with multi-lead joint"
                 " reconstruction)\n";
  }

  // Paper shape checks.
  std::cout << "\nShape checks (dwt):\n";
  const sim::SweepResult& dwt = results[0];
  const double none_065 = dwt.find("none", 0.65)->snr_mean_db;
  const double dream_065 = dwt.find("dream", 0.65)->snr_mean_db;
  const double ecc_060 =
      dwt.find("ecc_secded", 0.60)->snr_mean_db;
  const double dream_060 = dwt.find("dream", 0.60)->snr_mean_db;
  const double ecc_050 =
      dwt.find("ecc_secded", 0.50)->snr_mean_db;
  const double dream_050 = dwt.find("dream", 0.50)->snr_mean_db;
  std::cout << "  protection helps at 0.65 V: "
            << (dream_065 > none_065 + 3.0 ? "PASS" : "FAIL") << '\n';
  std::cout << "  ECC competitive in 0.55-0.65 V band: "
            << (ecc_060 > dream_060 - 5.0 ? "PASS" : "FAIL") << '\n';
  std::cout << "  DREAM >= ECC at 0.50 V (multi-bit words): "
            << (dream_050 >= ecc_050 - 1.0 ? "PASS" : "FAIL") << '\n';
  return 0;
}
