// Ablation benches for the design decisions called out in DESIGN.md:
//  D1 - DREAM mask-ID width (1..4 bits): correction ability vs side-memory
//       cost;
//  D2 - BER model (log-linear vs probit): the Fig. 4 shape must be
//       invariant to the calibration family;
//  D3 - logical->physical address scrambling: per-run SNR variance with a
//       *fixed* physical fault map, with and without scrambling.

#include <iostream>

#include "ulpdream/apps/dwt_app.hpp"
#include "ulpdream/core/dream.hpp"
#include "ulpdream/ecg/database.hpp"
#include "ulpdream/metrics/quality.hpp"
#include "ulpdream/sim/runner.hpp"
#include "ulpdream/sim/parallel_sweep.hpp"
#include "ulpdream/util/cli.hpp"
#include "ulpdream/util/stats.hpp"
#include "ulpdream/util/table.hpp"

using namespace ulpdream;

namespace {

void ablation_d1_mask_width(sim::ExperimentRunner& runner,
                            const ecg::Record& record, std::size_t runs) {
  std::cerr << "[ablations] D1 mask-ID width...\n";
  const apps::DwtApp app;
  const auto ber_model = mem::make_ber_model("log-linear");

  util::Table table("D1 - DREAM mask-ID width vs SNR (DWT)");
  table.set_header({"mask_id_bits", "safe_bits/word", "snr@0.60V_dB",
                    "snr@0.55V_dB", "snr@0.50V_dB"});
  for (int bits = 1; bits <= 4; ++bits) {
    const core::Dream dream(bits);
    std::vector<std::string> row = {std::to_string(bits),
                                    std::to_string(dream.safe_bits())};
    for (const double v : {0.60, 0.55, 0.50}) {
      util::Xoshiro256 rng(991 + static_cast<std::uint64_t>(bits));
      util::RunningStats snr;
      for (std::size_t r = 0; r < runs; ++r) {
        const mem::FaultMap map = mem::FaultMap::random(
            mem::MemoryGeometry::kWords16, 22, ber_model->ber(v), rng);
        snr.add(runner.run_once(app, record, dream, &map, v).snr_db);
      }
      row.push_back(util::fmt(snr.mean(), 1));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << '\n';
}

void ablation_d2_ber_model(const sim::ParallelSweepRunner& sweeper,
                           const ecg::Record& record, std::size_t runs) {
  std::cerr << "[ablations] D2 BER model family...\n";
  const apps::DwtApp app;
  util::Table table("D2 - BER model family: DWT SNR under DREAM");
  table.set_header({"V", "log-linear_dB", "probit_dB"});

  sim::SweepConfig cfg;
  cfg.voltages = {0.5, 0.55, 0.6, 0.65, 0.7, 0.8, 0.9};
  cfg.runs = runs;
  cfg.emts = {"dream"};

  cfg.ber_model = "log-linear";
  const sim::SweepResult log_res = sweeper.run(app, record, cfg);
  cfg.ber_model = "probit";
  const sim::SweepResult probit_res = sweeper.run(app, record, cfg);

  for (auto it = cfg.voltages.rbegin(); it != cfg.voltages.rend(); ++it) {
    table.add_row(
        {util::fmt(*it, 2),
         util::fmt(log_res.find("dream", *it)->snr_mean_db, 1),
         util::fmt(probit_res.find("dream", *it)->snr_mean_db,
                   1)});
  }
  table.print(std::cout);
  std::cout << "  (both families must be monotone with the same knee"
               " region)\n\n";
}

void ablation_d3_scrambling(sim::ExperimentRunner& runner,
                            const ecg::Record& record, std::size_t runs) {
  std::cerr << "[ablations] D3 address scrambling...\n";
  // One FIXED physical fault map; vary only the scrambler seed. Without
  // scrambling every run sees identical corruption (zero variance); with
  // scrambling the map is effectively re-randomized per run — the paper's
  // justification for drawing fresh maps each Monte-Carlo run.
  const apps::DwtApp app;
  const auto ber_model = mem::make_ber_model("log-linear");
  const double v = 0.60;
  util::Xoshiro256 rng(404);
  const mem::FaultMap map = mem::FaultMap::random(
      mem::MemoryGeometry::kWords16, 22, ber_model->ber(v), rng);

  const auto dream = core::make_emt("dream");
  util::RunningStats fixed_snr;
  util::RunningStats scrambled_snr;
  for (std::size_t r = 0; r < runs; ++r) {
    {
      core::MemorySystem sys(*dream);
      sys.attach_faults(&map);
      const auto out = app.run(sys, record);
      fixed_snr.add(metrics::snr_db(runner.reference(app, record), out));
    }
    {
      core::MemorySystem sys(*dream);
      sys.set_scrambler(1000 + r);
      sys.attach_faults(&map);
      const auto out = app.run(sys, record);
      scrambled_snr.add(metrics::snr_db(runner.reference(app, record), out));
    }
  }
  util::Table table("D3 - address scrambling vs run-to-run variance (0.60 V)");
  table.set_header({"mode", "snr_mean_dB", "snr_stddev_dB"});
  table.add_row({"fixed map, no scrambling", util::fmt(fixed_snr.mean(), 2),
                 util::fmt(fixed_snr.stddev(), 3)});
  table.add_row({"fixed map, per-run scrambling",
                 util::fmt(scrambled_snr.mean(), 2),
                 util::fmt(scrambled_snr.stddev(), 3)});
  table.print(std::cout);
  std::cout << "  (no-scrambling variance must be ~0; scrambling restores"
               " map diversity)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto runs = static_cast<std::size_t>(cli.get_int("runs", 20));
  const ecg::Record record = ecg::make_default_record(7);
  sim::ExperimentRunner runner;
  const sim::ParallelSweepRunner sweeper = sim::ParallelSweepRunner::from_cli(cli);
  ablation_d1_mask_width(runner, record, runs);
  ablation_d2_ber_model(sweeper, record, runs);
  ablation_d3_scrambling(runner, record, runs);
  return 0;
}
