// Query-daemon latency benchmark: what a warm cache buys. Spins up a
// real Daemon on a Unix socket in a scratch directory and times, over
// the actual wire protocol, (a) a cold query that executes the whole
// grid, (b) repeated exact-hit queries answered from the mapped cache
// (min over N, measuring the floor a client sees), and (c) a superset
// query that gap-fills from the cached prefix. Self-timed, no external
// benchmark dependency; emits machine-readable JSON (stdout, or
// --json FILE with a human summary on stderr) — the CI artifact
// BENCH_serve.json.
//
//   serve_bench --json BENCH_serve.json
//   serve_bench --reps 8 --warm-queries 32
//   serve_bench --assert-speedup 50     # exit 1 unless warm >= 50x cold
//
// The cold/warm ratio is the daemon's whole reason to exist, so CI runs
// with --assert-speedup: a regression that makes hits recompute (or
// drags a file copy into the hot path) fails the build, not just a
// dashboard.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "ulpdream/campaign/spec.hpp"
#include "ulpdream/serve/client.hpp"
#include "ulpdream/serve/daemon.hpp"
#include "ulpdream/util/cli.hpp"

using namespace ulpdream;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

campaign::CampaignSpec bench_spec(std::size_t reps, std::size_t records) {
  campaign::CampaignSpec spec;
  spec.apps = {"dwt"};
  spec.emts = {"none", "dream"};
  spec.voltages = {0.6, 0.7, 0.8};
  for (std::size_t i = 0; i < records; ++i) {
    spec.records.push_back(campaign::RecordAxis{
        ecg::Pathology::kNormalSinus, 1.0 + double(i), 7});
  }
  spec.repetitions = reps;
  spec.seed = 77;
  return spec.normalized();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto reps =
      static_cast<std::size_t>(std::max<long long>(1, cli.get_int("reps", 4)));
  const auto warm_queries = static_cast<std::size_t>(
      std::max<long long>(1, cli.get_int("warm-queries", 16)));
  const double assert_speedup = cli.get_double("assert-speedup", 0.0);

  const fs::path dir = fs::temp_directory_path() / "ulpd_serve_bench";
  fs::remove_all(dir);
  fs::create_directories(dir);

  serve::Daemon::Options options;
  options.listen = "unix:" + (dir / "bench.sock").string();
  options.cache_dir = (dir / "cache").string();
  options.progress_every_ms = 20;
  serve::Daemon daemon(options);
  std::thread server([&daemon] { (void)daemon.run(); });

  const campaign::CampaignSpec prefix = bench_spec(reps, 1);
  const campaign::CampaignSpec superset = bench_spec(reps, 2);
  serve::Client client = serve::Client::connect(daemon.endpoint());

  // (a) Cold: the whole grid executes on the daemon's pool.
  auto t0 = Clock::now();
  const serve::Result cold = client.query(prefix);
  const double cold_ms = ms_since(t0);

  // (b) Warm floor: min over N exact hits on the same connection.
  double warm_ms = 0.0;
  for (std::size_t i = 0; i < warm_queries; ++i) {
    t0 = Clock::now();
    const serve::Result warm = client.query(prefix);
    const double ms = ms_since(t0);
    if (warm.status != serve::CacheStatus::kHit) {
      std::fprintf(stderr, "expected a cache hit, got %s\n",
                   serve::to_string(warm.status));
      return 1;
    }
    if (i == 0 || ms < warm_ms) warm_ms = ms;
  }

  // (c) Gap-fill: double the record axis, reuse the cached half.
  t0 = Clock::now();
  const serve::Result filled = client.query(superset);
  const double gapfill_ms = ms_since(t0);

  daemon.request_stop();
  server.join();

  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  std::ostringstream json;
  json << "{\n  \"benchmark\": \"serve\",\n"
       << "  \"grid_items\": " << cold.items_total << ",\n"
       << "  \"store_bytes\": " << cold.store_bytes.size() << ",\n"
       << "  \"cold_ms\": " << cold_ms << ",\n"
       << "  \"warm_ms\": " << warm_ms << ",\n"
       << "  \"warm_queries\": " << warm_queries << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"gapfill_ms\": " << gapfill_ms << ",\n"
       << "  \"gapfill_items_total\": " << filled.items_total << ",\n"
       << "  \"gapfill_items_executed\": " << filled.items_executed << "\n"
       << "}\n";

  const std::string json_path = cli.get("json", "");
  if (json_path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream os(json_path);
    os << json.str();
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::fprintf(stderr,
               "serve: cold %.1f ms, warm %.3f ms (min of %zu), %.0fx; "
               "gap-fill %.1f ms (%llu of %llu items executed)\n",
               cold_ms, warm_ms, warm_queries, speedup, gapfill_ms,
               static_cast<unsigned long long>(filled.items_executed),
               static_cast<unsigned long long>(filled.items_total));

  fs::remove_all(dir);
  if (assert_speedup > 0.0 && speedup < assert_speedup) {
    std::fprintf(stderr,
                 "FAIL: warm/cold speedup %.1fx below the required %.1fx\n",
                 speedup, assert_speedup);
    return 1;
  }
  return 0;
}
